"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate FAMILY N -o FILE``
    Generate a nowhere dense family member and save it (format chosen by
    extension: ``.json`` or edge-list text).

``info FILE``
    Print a graph's vital statistics (size, density exponent, degeneracy).

``explain QUERY [--graph FILE]``
    Diagnose whether a query is in the indexable fragment and why; with
    ``--graph`` also build the index for real and report where the
    preprocessing time went, stage by stage.

``trace GRAPH QUERY [--enumerate N] [--count] [-o FILE] [--format F]``
    Run preprocessing plus the requested operations under span tracing
    (see :mod:`repro.trace`), print the span tree and per-stage totals,
    and optionally write a Chrome trace-event file or JSONL spans.

``profile GRAPH QUERY [--enumerate N] [--hz HZ] [--top K] [-o FILE]``
    Run preprocessing plus enumeration under the sampling profiler
    (:mod:`repro.trace.profiler`), print the hottest collapsed stacks,
    and optionally write flamegraph.pl / speedscope input.

``query FILE QUERY [--enumerate N] [--count] [--test a,b] [--next a,b]
[--cache DIR] [--workers N] [--layout L]``
    Build the Theorem 2.3 index over the graph in FILE and answer.  With
    ``--cache`` the index is served from (and saved to) a snapshot
    directory, so the pseudo-linear preprocessing is paid once across
    process invocations; see :mod:`repro.persist`.

``warm GRAPH QUERY -o FILE [--workers N] [--layout L]``
    Run the preprocessing now and snapshot the built index to FILE, so a
    later ``query --cache`` (or :func:`repro.persist.load_index`) starts
    warm.

``bench FILE QUERY``
    One-line timing summary: preprocessing, per-test, per-next.

``bench-suite [--quick] [-o FILE] [--experiments IDS] [--report FILE]``
    Run the paper's E1-E18 experiment sweeps (no pytest-benchmark
    needed), write schema-validated results JSON, and check the O(1)
    regression gate.  See :mod:`repro.benchrunner`.

``serve [--host H] [--port P] [--snapshot-dir DIR] [--graph-root DIR] ...``
    Run the long-lived HTTP query service: JSON endpoints for ``test`` /
    ``next`` / ``enumerate`` (cursor-paginated) / ``count`` /
    ``explain`` plus ``/metrics``, over a shared LRU cache of built
    indexes with per-key build deduplication.  See :mod:`repro.serve`
    and ``docs/serving.md``.

``lint [PATHS...] [--format text|json]``
    Statically check the complexity contracts (``@constant_time`` /
    ``@delay`` / ``@pseudo_linear``) *and* the concurrency contracts
    (``@frozen_after_build`` / ``@read_only`` / ``guarded_by``) over the
    given paths in one merged report; defaults to the installed
    ``repro`` package itself.

Error handling: library code raises :class:`repro.errors.ReproError`
subclasses; :func:`main` is a thin mapper from those to one-line stderr
messages and exit codes (2 for bad input, 1 for valid requests the
engine cannot satisfy).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.engine import build_index
from repro.errors import ReproError, UsageError
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import FAMILIES
from repro.graphs.io import read_edge_list, read_json, write_edge_list, write_json
from repro.graphs.sparsity import degeneracy, edge_density_exponent
from repro.logic.diagnostics import explain
from repro.trace.profiler import DEFAULT_HZ as _PROFILE_HZ


def _load_graph(path: str) -> ColoredGraph:
    source = Path(path)
    try:
        if source.suffix == ".json":
            loaded = read_json(source)
            if not isinstance(loaded, ColoredGraph):
                raise UsageError(f"{path} holds a database, not a colored graph")
            return loaded
        return read_edge_list(source)
    except OSError as exc:
        raise UsageError(f"cannot read {path}: {exc.strerror or exc}") from None


def _parse_tuple(text: str) -> tuple[int, ...]:
    parts = [part.strip() for part in text.split(",")]
    if not any(parts) or any(not part for part in parts):
        raise UsageError(
            f"expected a comma-separated tuple of integers, got {text!r}"
        )
    try:
        return tuple(int(part) for part in parts)
    except ValueError:
        raise UsageError(
            f"expected a comma-separated tuple of integers, got {text!r}"
        ) from None


def _cmd_generate(args) -> int:
    if args.family not in FAMILIES:
        raise UsageError(
            f"unknown family {args.family!r}; choose from {sorted(FAMILIES)}"
        )
    graph = FAMILIES[args.family](args.n, seed=args.seed)
    out = Path(args.output)
    if out.suffix == ".json":
        write_json(graph, out)
    else:
        write_edge_list(graph, out)
    print(f"wrote {graph!r} to {out}")
    return 0


def _cmd_info(args) -> int:
    graph = _load_graph(args.graph)
    print(f"vertices:          {graph.n}")
    print(f"edges:             {graph.num_edges}")
    print(f"colors:            {', '.join(sorted(graph.color_names)) or '(none)'}")
    print(f"density exponent:  {edge_density_exponent(graph):.4f}")
    print(f"degeneracy:        {degeneracy(graph)}")
    if args.locality:
        from repro.graphs.validation import locality_report

        print()
        print(locality_report(graph, radius=args.radius).render())
    return 0


def _cmd_explain(args) -> int:
    report = explain(args.query)
    print(report.render())
    if args.graph is not None and report.decomposable:
        # enrichment: build the index for real under tracing and show
        # where the preprocessing time actually goes, stage by stage
        from repro import trace

        graph = _load_graph(args.graph)
        with trace.tracing("explain", query=args.query) as tracer:
            index = build_index(graph, args.query, method="indexed")
        print()
        print(
            f"built against {args.graph} (n={graph.n}): "
            f"preprocessing={index.preprocessing_seconds * 1000:.1f} ms"
        )
        print(trace.render_stage_totals(tracer.spans))
    return 0 if report.decomposable else 1


def _cmd_trace(args) -> int:
    if args.enumerate is not None and args.enumerate < 1:
        raise UsageError(f"--enumerate must be >= 1, got {args.enumerate}")
    from repro import metrics, trace

    graph = _load_graph(args.graph)
    config = _engine_config(args)
    # ops=True so enumerate.step spans carry per-step operation counts
    with metrics.collect(ops=True):
        with trace.tracing(
            "repro trace", graph=args.graph, query=args.query
        ) as tracer:
            index = build_index(
                graph, args.query, method=args.method, config=config
            )
            if args.test is not None:
                values = _parse_tuple(args.test)
                print(f"test{values}: {index.test(values)}")
            if args.next is not None:
                values = _parse_tuple(args.next)
                print(f"next{values}: {index.next_solution(values)}")
            if args.count:
                print(f"count: {index.count()}")
            if args.enumerate:
                taken = 0
                for _solution in index.enumerate():
                    taken += 1
                    if taken >= args.enumerate:
                        break
                print(f"enumerated {taken} solutions")
    print(trace.render_tree(tracer))
    print(trace.render_stage_totals(tracer.spans))
    if args.output is not None:
        out = Path(args.output)
        if args.format == "tree":
            out.write_text(
                trace.render_tree(tracer)
                + "\n"
                + trace.render_stage_totals(tracer.spans)
                + "\n"
            )
            kind = "span tree"
        elif args.format == "jsonl" or (
            args.format == "auto" and out.suffix == ".jsonl"
        ):
            trace.write_jsonl(tracer, out)
            kind = "JSONL spans"
        else:
            trace.write_chrome_trace(tracer, out)
            kind = "Chrome trace-event file (load via chrome://tracing)"
        print(f"wrote {kind}: {out} ({len(tracer.spans)} spans)")
    return 0


def _cmd_profile(args) -> int:
    if args.enumerate < 0:
        raise UsageError(f"--enumerate must be >= 0, got {args.enumerate}")
    if args.hz <= 0 or args.hz > 1000:
        raise UsageError(f"--hz must be in (0, 1000], got {args.hz}")
    if args.top < 1:
        raise UsageError(f"--top must be >= 1, got {args.top}")
    from repro.trace.profiler import SamplingProfiler, flamegraph_text

    graph = _load_graph(args.graph)
    config = _engine_config(args)
    profiler = SamplingProfiler(hz=args.hz)
    tick = time.perf_counter()
    with profiler:
        index = build_index(graph, args.query, method=args.method, config=config)
        if args.count:
            print(f"count: {index.count()}")
        taken = 0
        if args.enumerate:
            for _solution in index.enumerate():
                taken += 1
                if taken >= args.enumerate:
                    break
            print(f"enumerated {taken} solutions")
    elapsed = time.perf_counter() - tick
    stacks = profiler.collapsed()
    print(
        f"profiled {elapsed:.2f}s at {args.hz:g} Hz: "
        f"{profiler.samples} samples, {len(stacks)} distinct stacks"
    )
    total = max(1, profiler.samples)
    shown = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))[: args.top]
    for stack, count in shown:
        leaf = stack.rsplit(";", 1)[-1]
        print(f"  {count:6d} ({count / total:6.1%})  {leaf}")
        if args.full_stacks:
            print(f"           {stack}")
    if args.output is not None:
        out = Path(args.output)
        out.write_text(flamegraph_text(stacks))
        print(
            f"wrote collapsed stacks: {out} "
            "(feed to flamegraph.pl or speedscope)"
        )
    if profiler.samples == 0:
        print(
            "repro profile: no samples taken — the run finished faster "
            "than one sampling interval; raise --hz or --enumerate more",
            file=sys.stderr,
        )
    return 0


def _engine_config(args):
    from repro.core.config import DEFAULT_CONFIG, EngineConfig
    from repro.storage import resolve_layout

    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise UsageError(f"--workers must be >= 1, got {workers}")
    layout = getattr(args, "layout", "auto")
    try:
        resolve_layout(layout)
    except ValueError as exc:
        raise UsageError(str(exc)) from exc
    if workers == 1 and layout == "auto":
        return DEFAULT_CONFIG
    return EngineConfig(workers=workers, layout=layout)


def _cmd_query(args) -> int:
    if args.enumerate is not None and args.enumerate < 1:
        raise UsageError(f"--enumerate must be >= 1, got {args.enumerate}")
    graph = _load_graph(args.graph)
    config = _engine_config(args)
    if args.cache:
        from repro.persist import load_or_build

        tick = time.perf_counter()
        index, status = load_or_build(
            graph, args.query, method=args.method,
            config=config, cache_dir=args.cache,
        )
        ready_ms = (time.perf_counter() - tick) * 1000
        print(
            f"index {status} ({args.cache}): method={index.method}, "
            f"arity={index.arity}, ready in {ready_ms:.1f} ms"
        )
    else:
        index = build_index(graph, args.query, method=args.method, config=config)
        print(
            f"index built: method={index.method}, arity={index.arity}, "
            f"preprocessing={index.preprocessing_seconds * 1000:.1f} ms"
        )
    if args.stats:
        import json as _json

        print(_json.dumps(index.stats(), indent=1, sort_keys=True))
    if args.count:
        print(f"count: {index.count()}")
    try:
        if args.test is not None:
            values = _parse_tuple(args.test)
            print(f"test{values}: {index.test(values)}")
        if args.next is not None:
            values = _parse_tuple(args.next)
            print(f"next{values}: {index.next_solution(values)}")
    except ValueError as exc:
        # e.g. a wrong-arity tuple for this query; one line, no traceback
        print(f"repro query: {exc}", file=sys.stderr)
        return 2
    if args.enumerate:
        # first-class pagination (Page/next_cursor) rather than slicing a
        # full enumeration — same code path the serve endpoint uses
        remaining = args.enumerate
        cursor = None
        while remaining > 0:
            page = index.enumerate_page(start=cursor, limit=min(remaining, 500))
            for solution in page.items:
                print(" ".join(map(str, solution)))
            remaining -= len(page.items)
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
    return 0


def _cmd_warm(args) -> int:
    from repro.persist import warm

    graph = _load_graph(args.graph)
    config = _engine_config(args)
    tick = time.perf_counter()
    index, header = warm(
        graph, args.query, args.output, method=args.method, config=config
    )
    elapsed = time.perf_counter() - tick
    print(
        f"warmed {args.output}: method={index.method}, arity={index.arity}, "
        f"{header['payload_bytes']} bytes, "
        f"fingerprint {header['fingerprint'][:12]}..., "
        f"built+saved in {elapsed:.2f}s"
    )
    return 0


def _cmd_bench(args) -> int:
    graph = _load_graph(args.graph)
    tick = time.perf_counter()
    index = build_index(graph, args.query)
    build = time.perf_counter() - tick
    if graph.n == 0:
        # nothing to probe on an empty graph (and the modulus below
        # would divide by zero); arity-0 queries have exactly one probe
        probes = [()] * 200 if index.arity == 0 else []
    else:
        probes = [
            tuple((7 * i + j) % graph.n for j in range(index.arity))
            for i in range(200)
        ]
    if not probes:
        print(f"n={graph.n} method={index.method} build={build:.2f}s test=n/a next=n/a")
        return 0
    tick = time.perf_counter()
    for probe in probes:
        index.test(probe)
    per_test = (time.perf_counter() - tick) / len(probes)
    tick = time.perf_counter()
    for probe in probes:
        index.next_solution(probe)
    per_next = (time.perf_counter() - tick) / len(probes)
    print(
        f"n={graph.n} method={index.method} build={build:.2f}s "
        f"test={per_test * 1e6:.0f}us next={per_next * 1e6:.0f}us"
    )
    return 0


def _cmd_serve(args) -> int:
    from repro import metrics
    from repro.serve import QueryService, create_server

    if args.max_page_size < 1:
        raise UsageError(f"--max-page-size must be >= 1, got {args.max_page_size}")
    if args.max_batch_calls < 1:
        raise UsageError(
            f"--max-batch-calls must be >= 1, got {args.max_batch_calls}"
        )
    if args.cache_entries < 1:
        raise UsageError(f"--cache-entries must be >= 1, got {args.cache_entries}")
    if args.max_builds < 1:
        raise UsageError(f"--max-builds must be >= 1, got {args.max_builds}")
    if not 0.0 <= args.trace_sample <= 1.0:
        raise UsageError(
            f"--trace-sample must be in [0, 1], got {args.trace_sample}"
        )
    if args.trace_buffer < 0:
        raise UsageError(f"--trace-buffer must be >= 0, got {args.trace_buffer}")
    if args.watchdog_multiple < 0:
        raise UsageError(
            f"--watchdog-multiple must be >= 0, got {args.watchdog_multiple}"
        )
    from repro.trace.logging import configure as configure_logging
    from repro.trace.watchdog import Watchdog

    # every serve log line is one JSON object (trace ids included) so
    # aggregators can follow a request across the slow-log and watchdog
    configure_logging()
    if args.paranoid:
        # belt-and-suspenders mode: the static checker proves the read
        # path write-free, the tripwire catches what analysis can't see
        # (extensions, exec'd code, new code without annotations)
        from repro.contracts import install_freeze

        install_freeze()
    watchdog = None
    if args.watchdog_multiple > 0:
        watchdog = Watchdog(multiple=args.watchdog_multiple)
    service = QueryService(
        cache_entries=args.cache_entries,
        snapshot_dir=args.snapshot_dir,
        graph_root=args.graph_root,
        max_page_size=args.max_page_size,
        build_wait_seconds=args.build_timeout,
        max_in_flight_builds=args.max_builds,
        max_batch_calls=args.max_batch_calls,
        config=_engine_config(args),
    )
    if args.pool_workers:
        return _serve_pool(args, service)
    server = create_server(
        service,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        trace_capacity=args.trace_buffer,
        trace_sample=args.trace_sample,
        slow_ms=args.slow_ms,
        watchdog=watchdog,
    )
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port}", flush=True)
    try:
        # a live registry for the server's lifetime makes /metrics real:
        # engine.* counters, enumeration delay histograms, serve.* cache
        # counters (ops=False keeps contracted calls unpatched and fast;
        # bounded histograms keep a long-lived server's memory flat)
        with metrics.collect(ops=False, histogram_samples=8192):
            server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _serve_pool(args, service) -> int:
    """The ``--pool-workers`` branch of ``repro serve``: pre-fork pool."""
    import os as _os

    from repro.serve.pool import PoolServer
    from repro.trace.watchdog import Watchdog

    if not hasattr(_os, "fork"):
        raise UsageError("--pool-workers needs os.fork (POSIX only)")
    if args.pool_workers < 1:
        raise UsageError(f"--pool-workers must be >= 1, got {args.pool_workers}")
    shards = args.shards or args.pool_workers
    if shards < args.pool_workers:
        raise UsageError(
            f"--shards ({shards}) must be >= --pool-workers ({args.pool_workers})"
        )
    watchdog_factory = None
    if args.watchdog_multiple > 0:
        multiple = args.watchdog_multiple
        watchdog_factory = lambda: Watchdog(multiple=multiple)  # noqa: E731
    pool = PoolServer(
        service,
        host=args.host,
        port=args.port,
        workers=args.pool_workers,
        shards=shards,
        request_timeout=args.request_timeout,
        trace_capacity=args.trace_buffer,
        trace_sample=args.trace_sample,
        slow_ms=args.slow_ms,
        watchdog_factory=watchdog_factory,
    )
    pool.start()
    host, port = pool.address
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(pool: {pool.workers} workers, {pool.shards} shards, "
        f"{len(pool.preloaded)} preloaded, "
        f"{pool.shared_bytes} shared arena bytes)",
        flush=True,
    )
    try:
        pool.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down pool", file=sys.stderr)
    finally:
        pool.close()
    return 0


def _cmd_bench_suite(args) -> int:
    from repro.benchrunner import run_cli as bench_suite_cli

    return bench_suite_cli(args)


def _cmd_lint(args) -> int:
    from repro.contracts.lint import main as lint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro`` (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constant-delay FO query enumeration over sparse graphs",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a sparse graph")
    generate.add_argument("family", help=f"one of {sorted(FAMILIES)}")
    generate.add_argument("n", type=int, help="approximate vertex count")
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    info = commands.add_parser("info", help="print graph statistics")
    info.add_argument("graph")
    info.add_argument("--locality", action="store_true",
                      help="sample r-ball sizes and render a locality verdict")
    info.add_argument("--radius", type=int, default=2)
    info.set_defaults(func=_cmd_info)

    explain_cmd = commands.add_parser("explain", help="diagnose a query")
    explain_cmd.add_argument("query")
    explain_cmd.add_argument("--graph", metavar="FILE", default=None,
                             help="also build against this graph and show "
                                  "per-stage preprocessing timings")
    explain_cmd.set_defaults(func=_cmd_explain)

    trace_cmd = commands.add_parser(
        "trace", help="run a build + query under span tracing"
    )
    trace_cmd.add_argument("graph")
    trace_cmd.add_argument("query")
    trace_cmd.add_argument("--method", default="auto",
                           choices=["auto", "indexed", "naive"])
    trace_cmd.add_argument("--count", action="store_true")
    trace_cmd.add_argument("--test", metavar="a,b")
    trace_cmd.add_argument("--next", metavar="a,b")
    trace_cmd.add_argument("--enumerate", type=int, default=None, metavar="N")
    trace_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                           help="threads for the per-bag preprocessing fan-out")
    trace_cmd.add_argument("--layout", default="auto",
                           choices=["auto", "object", "arena"],
                           help="trie register layout (auto follows "
                                "REPRO_STORAGE_LAYOUT)")
    trace_cmd.add_argument("-o", "--output", metavar="FILE", default=None,
                           help="write the trace to FILE instead of (only) "
                                "printing the span tree")
    trace_cmd.add_argument("--format", default="auto",
                           choices=["auto", "chrome", "jsonl", "tree"],
                           help="output format; 'auto' picks by -o extension "
                                "(.jsonl -> jsonl, else Chrome trace-event)")
    trace_cmd.set_defaults(func=_cmd_trace)

    profile_cmd = commands.add_parser(
        "profile", help="sample-profile a query run (collapsed stacks)"
    )
    profile_cmd.add_argument("graph")
    profile_cmd.add_argument("query")
    profile_cmd.add_argument("--method", default="auto",
                             choices=["auto", "bfs", "treedepth"])
    profile_cmd.add_argument("--count", action="store_true")
    profile_cmd.add_argument("--enumerate", type=int, default=1000, metavar="N",
                             help="enumerate up to N solutions under the "
                             "profiler (default 1000; 0 to skip)")
    profile_cmd.add_argument("--hz", type=float, default=_PROFILE_HZ, metavar="HZ",
                             help="sampling frequency (default %(default)s)")
    profile_cmd.add_argument("--top", type=int, default=15, metavar="K",
                             help="print the K hottest stacks (default 15)")
    profile_cmd.add_argument("--full-stacks", action="store_true",
                             help="print full root->leaf stacks, not just "
                             "the leaf frame")
    profile_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                             help="parallel preprocessing workers")
    profile_cmd.add_argument("--layout", default="auto",
                             choices=["auto", "pointer", "arena"],
                             help="trie storage layout (see docs/storage.md)")
    profile_cmd.add_argument("-o", "--output", metavar="FILE", default=None,
                             help="write collapsed stacks for flamegraph.pl "
                             "/ speedscope")
    profile_cmd.set_defaults(func=_cmd_profile)

    query = commands.add_parser("query", help="index a graph and answer")
    query.add_argument("graph")
    query.add_argument("query")
    query.add_argument("--method", default="auto", choices=["auto", "indexed", "naive"])
    query.add_argument("--count", action="store_true")
    query.add_argument("--stats", action="store_true")
    query.add_argument("--test", metavar="a,b")
    query.add_argument("--next", metavar="a,b")
    query.add_argument("--enumerate", type=int, default=None, metavar="N")
    query.add_argument("--cache", metavar="DIR", default=None,
                       help="serve from (and save to) a snapshot cache directory")
    query.add_argument("--workers", type=int, default=1, metavar="N",
                       help="threads for the per-bag preprocessing fan-out")
    query.add_argument("--layout", default="auto",
                       choices=["auto", "object", "arena"],
                       help="trie register layout (auto follows "
                            "REPRO_STORAGE_LAYOUT)")
    query.set_defaults(func=_cmd_query)

    warm_cmd = commands.add_parser(
        "warm", help="run preprocessing now and snapshot the index to a file"
    )
    warm_cmd.add_argument("graph")
    warm_cmd.add_argument("query")
    warm_cmd.add_argument("-o", "--output", required=True)
    warm_cmd.add_argument("--method", default="auto",
                          choices=["auto", "indexed", "naive"])
    warm_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                          help="threads for the per-bag preprocessing fan-out")
    warm_cmd.add_argument("--layout", default="auto",
                          choices=["auto", "object", "arena"],
                          help="trie register layout (auto follows "
                               "REPRO_STORAGE_LAYOUT)")
    warm_cmd.set_defaults(func=_cmd_warm)

    bench = commands.add_parser("bench", help="one-line timing summary")
    bench.add_argument("graph")
    bench.add_argument("query")
    bench.set_defaults(func=_cmd_bench)

    serve = commands.add_parser(
        "serve", help="run the HTTP query service with a shared index cache"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--snapshot-dir", metavar="DIR", default=None,
                       help="back the in-memory cache with .rpx snapshots")
    serve.add_argument("--graph-root", metavar="DIR", default=None,
                       help="allow 'graph_path' requests under this directory")
    serve.add_argument("--cache-entries", type=int, default=8, metavar="N",
                       help="warm indexes kept in the LRU (default 8)")
    serve.add_argument("--max-page-size", type=int, default=1000, metavar="N",
                       help="cap on one enumerate page (default 1000)")
    serve.add_argument("--max-builds", type=int, default=4, metavar="N",
                       help="concurrent distinct index builds (default 4)")
    serve.add_argument("--max-batch-calls", type=int, default=1024, metavar="N",
                       help="cap on calls per /v1/batch request (default 1024)")
    serve.add_argument("--build-timeout", type=float, default=60.0, metavar="S",
                       help="seconds a request waits on an in-flight build")
    serve.add_argument("--request-timeout", type=float, default=30.0, metavar="S",
                       help="socket read timeout per request")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="threads for the per-bag preprocessing fan-out")
    serve.add_argument("--layout", default="auto",
                       choices=["auto", "object", "arena"],
                       help="trie register layout (auto follows "
                            "REPRO_STORAGE_LAYOUT)")
    serve.add_argument("--trace-sample", type=float, default=0.0, metavar="P",
                       help="record a span tree for this fraction of requests "
                            "(X-Trace-Id requests are always recorded)")
    serve.add_argument("--trace-buffer", type=int, default=64, metavar="N",
                       help="recent traces kept for /v1/traces "
                            "(0 disables request tracing entirely)")
    serve.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                       help="log a structured warning for requests slower "
                            "than MS milliseconds")
    serve.add_argument("--watchdog-multiple", type=float, default=20.0,
                       metavar="X",
                       help="flag enumeration steps slower than X times the "
                            "calibrated budget (0 disables the watchdog)")
    serve.add_argument("--pool-workers", type=int, default=0, metavar="N",
                       help="pre-fork N worker processes sharing mmap'd "
                            "arena snapshots; requests are routed to workers "
                            "by (graph, query) shard (0 = single process)")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="routing shards for the pooled warm-index LRU "
                            "(default: --pool-workers)")
    serve.add_argument("--paranoid", action="store_true",
                       help="install the freeze tripwire: any write to a "
                            "frozen index outside its build phase raises "
                            "instead of racing (cheap __setattr__ guard)")
    serve.set_defaults(func=_cmd_serve)

    from repro.benchrunner import add_arguments as _bench_suite_arguments

    bench_suite = commands.add_parser(
        "bench-suite",
        help="run the E1-E18 experiment sweeps and the O(1) regression gate",
    )
    _bench_suite_arguments(bench_suite)
    bench_suite.set_defaults(func=_cmd_bench_suite)

    lint = commands.add_parser(
        "lint", help="check the complexity and concurrency contracts"
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories (default: the repro package)")
    lint.add_argument("--format", default="text", choices=["text", "json"])
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    The thin-mapper contract: library code raises
    :class:`~repro.errors.ReproError` subclasses and this function turns
    them into ``repro <command>: <message>`` on stderr plus the
    subclass's ``exit_code`` — bad input (``UsageError``, parse and
    graph-format errors) exits 2, valid-but-unsatisfiable requests
    (e.g. ``--method indexed`` on an undecomposable query) exit 1.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
