"""The materialize-everything baseline.

Evaluates the query on every tuple upfront.  This is what the paper's
pseudo-linear preprocessing + constant delay is an *alternative to*: the
baseline's preprocessing is ``Θ(n^k)`` evaluations (each possibly
expensive), although its per-answer operations are then trivially fast.
Used for correctness oracles in tests and as the comparison subject of
experiments E8/E9/E12.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator

from repro.contracts import constant_time, delay
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.semantics import solutions as naive_solutions
from repro.logic.syntax import Formula, Var


class NaiveIndex:
    """Same interface as the engine's indexes, implemented by brute force."""

    def __init__(
        self,
        graph: ColoredGraph,
        phi: Formula,
        free_order: tuple[Var, ...],
    ) -> None:
        self.graph = graph
        self.phi = phi
        self.free_order = tuple(free_order)
        self.k = len(self.free_order)
        # sorted() on ingest: every query path below bisects this list, so
        # its order must not silently depend on the generator's iteration
        # order (sorting an already-sorted stream is a cheap linear scan)
        self.solutions = sorted(naive_solutions(graph, phi, list(self.free_order)))
        self._solution_set = set(self.solutions)

    @constant_time(note="hash probe into the materialized set")
    def test(self, values: tuple[int, ...]) -> bool:
        """Membership in the materialized result set."""
        return tuple(values) in self._solution_set

    @delay("O(log n)", note="binary search over the materialized list")
    def next_solution(self, start: tuple[int, ...]) -> tuple[int, ...] | None:
        """Smallest materialized solution >= start (binary search)."""
        index = bisect_left(self.solutions, tuple(start))
        return self.solutions[index] if index < len(self.solutions) else None

    @delay("O(1)", note="already materialized; resume is one binary search")
    def enumerate(self, start: tuple[int, ...] | None = None) -> Iterator[tuple[int, ...]]:
        """The materialized solutions ``>= start``, already sorted.

        Resuming mid-stream bisects to the first qualifying solution —
        O(log |result set|) — instead of filtering the whole list, so
        pagination stays cheap even on huge materialized results.
        """
        if start is None:
            return iter(self.solutions)
        index = bisect_left(self.solutions, tuple(start))
        return (self.solutions[i] for i in range(index, len(self.solutions)))

    @property
    def exact_delay(self) -> bool:
        """Trivially constant delay: everything is materialized."""
        return True

    def __len__(self) -> int:
        return len(self.solutions)
