"""Baselines the paper's algorithms are measured against.

* :class:`~repro.baselines.naive.NaiveIndex` — materialize the whole
  result set upfront (``O(n^k)`` evaluations), then answer from memory.
* :func:`~repro.baselines.bfs_oracle.bfs_distance_at_most` — per-query
  BFS distance testing, the baseline for Proposition 4.2.
"""

from repro.baselines.bfs_oracle import bfs_distance_at_most
from repro.baselines.naive import NaiveIndex

__all__ = ["NaiveIndex", "bfs_distance_at_most"]
