"""Per-query BFS distance testing — the baseline for Proposition 4.2.

No preprocessing at all: every ``dist(a, b) <= r`` query runs a cutoff
BFS, costing ``O(min(n, deg^r))`` per query.  The distance index's win is
trading pseudo-linear preprocessing for constant-time queries.
"""

from __future__ import annotations

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs


def bfs_distance_at_most(graph: ColoredGraph, a: int, b: int, r: int) -> bool:
    """``dist(a, b) <= r`` by cutoff BFS (the no-index baseline)."""
    if a == b:
        return True
    if r <= 0:
        return False
    return b in bounded_bfs(graph, [a], r)
