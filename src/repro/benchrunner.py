"""Self-contained benchmark-suite runner for the paper's experiments.

``repro bench-suite`` executes the E1-E18 sweeps directly — no
pytest-benchmark, no plugins — and writes one schema-validated JSON
document (see :mod:`repro.bench_schema`) that the existing
:mod:`repro.reporting` pipeline renders into EXPERIMENTS.md unchanged:
record ``fullname``/``name`` strings mirror the pytest-benchmark ids
emitted by ``benchmarks/bench_*.py``, so the verdict extraction in
``scripts/make_experiments.py`` keeps working on suite output.

Two profiles:

* ``full`` — the paper-scale sweeps (the same sizes the ``benchmarks/``
  files use); minutes of wall clock.
* ``quick`` (``--quick``) — shrunk sweeps for CI smoke runs; the scaling
  *shape* is still measurable (largest/smallest n is 4-16x), just noisier.

On top of the sweeps sits a regression gate (:func:`check_gate`): series
the paper claims are O(1) — trie lookups, distance tests, indexed
membership tests, next-solution calls, the p95 enumeration delay — must
not grow super-constant across the sweep.  A timing series fails the
gate only when its fitted log-log exponent *and* its max/min spread are
both clearly non-constant, so one noisy point cannot fail CI; the
operation-count series (register reads per lookup, measured via
:func:`repro.metrics.runtime.collect`) has no noise and is held to a
tight flatness bound.

Usage::

    python -m repro bench-suite --quick -o BENCH_results.json
    python -m repro.reporting BENCH_results.json > EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import math
import os
import platform
import random
import sys
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis import fit_exponent, flatness
from repro.bench_schema import SCHEMA_NAME, SUITE_VERSION, validate_results

DEFAULT_OUTPUT = "BENCH_results.json"

#: The experiments a plain ``repro bench-suite`` run covers, in run order.
ALL_EXPERIMENTS = (
    "E1", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
    "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18",
)

#: Extra series only the full profile runs by default (knob ablations).
FULL_ONLY_EXPERIMENTS = ("EA",)

_QUERY = "dist(x, y) > 2 & Blue(y)"  # the paper's running binary example


# ----------------------------------------------------------------------
# profiles


@dataclass(frozen=True)
class Profile:
    """Sweep sizes and repetition counts for one suite run."""

    name: str
    sizes: tuple[int, ...]  # main |G| sweep (E3/E4/E7/E8)
    small_sizes: tuple[int, ...]  # quadratic baselines (E12)
    trie_sizes: tuple[int, ...]  # universe sizes for E1
    delay_sizes: tuple[int, ...]  # full-enumeration sweep for E9
    splitter_sizes: tuple[int, ...]  # E5
    counting_sizes: tuple[int, ...]  # E13
    dynamic_sizes: tuple[int, ...]  # E14
    db_sizes: tuple[int, ...]  # E11
    probes: int  # probes per query batch
    repeats: int  # timing rounds per batch series
    trie_keys: int  # keys stored per trie
    splitter_trials: int

    def __str__(self) -> str:
        return self.name


QUICK = Profile(
    name="quick",
    sizes=(256, 512, 1024),
    small_sizes=(64, 128, 256),
    trie_sizes=(2**8, 2**10, 2**12),
    delay_sizes=(128, 256, 512),
    splitter_sizes=(128, 256, 512),
    counting_sizes=(128, 256, 512),
    dynamic_sizes=(256, 512, 1024),
    db_sizes=(256, 512, 1024),
    probes=128,
    repeats=3,
    trie_keys=500,
    splitter_trials=1,
)

FULL = Profile(
    name="full",
    sizes=(512, 2048, 8192),
    small_sizes=(128, 256, 512),
    trie_sizes=(2**10, 2**14, 2**18),
    delay_sizes=(512, 1024, 2048),
    splitter_sizes=(256, 1024, 2048),
    counting_sizes=(256, 512, 1024),
    dynamic_sizes=(512, 2048, 8192),
    db_sizes=(512, 2048, 8192),
    probes=512,
    repeats=5,
    trie_keys=2000,
    splitter_trials=2,
)


# ----------------------------------------------------------------------
# measurement primitives


def _stats(durations: Iterable[float]) -> dict[str, Any]:
    values = list(durations)
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return {
        "mean": mean,
        "min": min(values),
        "max": max(values),
        "stddev": math.sqrt(variance),
        "rounds": len(values),
    }


def _timed(
    fn: Callable[[], Any], repeats: int, warmup: bool = False
) -> tuple[dict[str, Any], Any]:
    """Run ``fn`` ``repeats`` times; (stats over wall clock, last result).

    ``warmup=True`` runs one untimed round first.  Repeated query batches
    need this: the first batch against a fresh index triggers the
    amortized-O(1) lazy builds (membership stores, far-structure caches),
    whose one-time cost would otherwise masquerade as per-query growth —
    it is what pytest-benchmark's calibration rounds used to absorb.
    """
    if warmup:
        fn()
    durations: list[float] = []
    result: Any = None
    for _ in range(repeats):
        tick = time.perf_counter()
        result = fn()
        durations.append(time.perf_counter() - tick)
    return _stats(durations), result


def _pairs(n: int, count: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def _keys(n: int, k: int, count: int, seed: int = 0) -> list[tuple[int, ...]]:
    rng = random.Random(seed)
    return [tuple(rng.randrange(n) for _ in range(k)) for _ in range(count)]


def _edit_sequence(
    graph: Any, rng: random.Random, count: int
) -> list[tuple[int, int, bool]]:
    """``count`` alternating valid edits ``(u, v, inserted)`` for E17.

    Even steps insert a fresh non-edge, odd steps delete a distinct
    original edge; inserted edges are never re-deleted and deleted edges
    never re-inserted, so every edit is valid against the evolving graph
    and the final graph differs from the starting one.
    """
    original = sorted(graph.edges())
    rng.shuffle(original)
    present = {tuple(sorted(edge)) for edge in original}
    deletions = iter(original)
    edits: list[tuple[int, int, bool]] = []
    for step in range(count):
        if step % 2 == 0:
            while True:
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u != v and (min(u, v), max(u, v)) not in present:
                    break
            present.add((min(u, v), max(u, v)))
            edits.append((u, v, True))
        else:
            u, v = next(deletions)
            edits.append((u, v, False))
    return edits


# ----------------------------------------------------------------------
# the suite


class BenchSuite:
    """Runs experiment series and accumulates pytest-benchmark-shaped records."""

    def __init__(
        self,
        profile: Profile,
        log: Callable[[str], None] = lambda line: None,
        workers: int = 2,
    ) -> None:
        self.profile = profile
        self.log = log
        self.workers = max(workers, 2)  # E15's parallel arm needs > 1
        self.records: list[dict[str, Any]] = []
        self._graphs: dict[tuple[str, int, int], Any] = {}
        self._indexes: dict[tuple[str, int, str, int], Any] = {}

    # -- infrastructure -------------------------------------------------

    def graph(self, family: str, n: int, seed: int = 1) -> Any:
        key = (family, n, seed)
        if key not in self._graphs:
            self._graphs[key] = _make_graph(family, n, seed)
        return self._graphs[key]

    def index(self, family: str, n: int, query: str, seed: int = 1) -> Any:
        from repro.core.engine import build_index

        key = (family, n, query, seed)
        if key not in self._indexes:
            self._indexes[key] = build_index(self.graph(family, n, seed), query)
        return self._indexes[key]

    def record(
        self,
        experiment: str,
        group: str,
        name: str,
        params: dict[str, Any],
        stats: dict[str, Any],
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.records.append(
            {
                "experiment": experiment,
                "group": group,
                "fullname": f"benchmarks/{group}.py::{name}",
                "name": name,
                "params": params,
                "stats": stats,
                "extra_info": extra or {},
            }
        )
        self.log(f"  {group}::{name}  mean={stats['mean'] * 1e3:.3f}ms")

    # -- E1: the Storing Theorem ---------------------------------------

    def run_e1(self) -> None:
        import pickle

        from repro.metrics.runtime import collect
        from repro.storage.arena import make_trie_store
        from repro.storage.trie import TrieStore

        p = self.profile
        for n in p.trie_sizes:
            probes = _keys(n, 2, p.probes, seed=1)
            cycle = _keys(n, 2, max(p.probes // 4, 16), seed=2)
            # object-layout results per n, so the arena records can carry
            # speedup/compaction ratios against the same workload
            baseline: dict[str, float] = {}
            for layout, suffix in (("object", ""), ("arena", "_arena")):
                store = None
                for k in (1, 2):
                    keys = _keys(n, k, p.trie_keys)

                    def build(
                        n: int = n, k: int = k, keys: list = keys,
                        layout: str = layout,
                    ) -> Any:
                        built = make_trie_store(n, k, 0.5, layout=layout)
                        for key in keys:
                            built.insert(key, 0)
                        return built

                    stats, store = _timed(build, 1)
                    snapshot_bytes = len(
                        pickle.dumps(store, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                    extra = {
                        "registers_per_key": round(
                            store.registers_used / max(len(store), 1), 1
                        ),
                        "snapshot_bytes": snapshot_bytes,
                    }
                    if layout == "object":
                        baseline[f"snapshot[{k}]"] = float(snapshot_bytes)
                    else:
                        extra["snapshot_shrink_vs_object"] = round(
                            baseline[f"snapshot[{k}]"] / snapshot_bytes, 2
                        )
                    self.record(
                        "E1", "bench_storing", f"test_init{suffix}[{k}-{n}]",
                        {"n": n, "k": k}, stats, extra,
                    )

                def lookup_batch(store: Any = store, probes: list = probes) -> None:
                    for probe in probes:
                        store.lookup(probe)

                stats, _ = _timed(lookup_batch, p.repeats, warmup=True)
                if layout == "object":
                    with collect(ops=True) as registry:
                        lookup_batch()
                    reads = sum(
                        count
                        for qualname, count in registry.op_counts.items()
                        if ".RegisterFile." in qualname
                    )
                else:
                    # the arena's fused walk reads the payload array directly
                    # and never calls the counted register API; replay the
                    # probes through the generic register-at-a-time walk so
                    # "registers touched per lookup" stays comparable
                    def counted_batch(
                        store: Any = store, probes: list = probes
                    ) -> None:
                        for probe in probes:
                            TrieStore._lookup_digits(
                                store, TrieStore._encode(store, probe)
                            )

                    with collect(ops=True) as registry:
                        counted_batch()
                    reads = sum(
                        count
                        for qualname, count in registry.op_counts.items()
                        if ".ArenaRegisterFile." in qualname
                    )
                extra = {
                    "per_lookup_batch": len(probes),
                    "register_ops_per_lookup": round(reads / len(probes), 1),
                }
                if layout == "object":
                    baseline["lookup"] = stats["mean"]
                else:
                    extra["speedup_vs_object"] = round(
                        baseline["lookup"] / stats["mean"], 2
                    )
                self.record(
                    "E1", "bench_storing", f"test_lookup{suffix}[{n}]", {"n": n},
                    stats, extra,
                )

                def successor_batch(
                    store: Any = store, probes: list = probes
                ) -> None:
                    for probe in probes:
                        store.successor(probe)

                stats, _ = _timed(successor_batch, p.repeats, warmup=True)
                extra = {"per_successor_batch": len(probes)}
                if layout == "object":
                    baseline["successor"] = stats["mean"]
                else:
                    extra["speedup_vs_object"] = round(
                        baseline["successor"] / stats["mean"], 2
                    )
                self.record(
                    "E1", "bench_storing", f"test_successor{suffix}[{n}]",
                    {"n": n}, stats, extra,
                )

                def updates(store: Any = store, cycle: list = cycle) -> None:
                    for key in cycle:
                        store.insert(key, 1)
                    for key in cycle:
                        if key in store:
                            store.remove(key)

                stats, _ = _timed(updates, p.repeats, warmup=True)
                self.record(
                    "E1", "bench_storing", f"test_update_cycle{suffix}[{n}]",
                    {"n": n}, stats, {"cycle": len(cycle)},
                )

    # -- E3: constant-time distance queries ----------------------------

    def run_e3(self) -> None:
        from repro.baselines.bfs_oracle import bfs_distance_at_most
        from repro.core.distance_index import DistanceIndex

        p = self.profile
        for n in p.sizes:
            g = self.graph("planar", n)
            stats, index = _timed(lambda g=g: DistanceIndex(g, 2), 1)
            self.record(
                "E3", "bench_distance", f"test_preprocess[planar-{n}]", {"n": n},
                stats, {"recursion_depth": index.recursion_depth},
            )

            probes = _pairs(n, p.probes, seed=3)

            def query_batch(index: Any = index, probes: list = probes) -> int:
                hits = 0
                for a, b in probes:
                    if index.test(a, b):
                        hits += 1
                return hits

            stats, _ = _timed(query_batch, p.repeats, warmup=True)
            self.record(
                "E3", "bench_distance", f"test_query[{n}]", {"n": n}, stats,
                {"probes": len(probes)},
            )

            def bfs_batch(g: Any = g, probes: list = probes) -> int:
                hits = 0
                for a, b in probes:
                    if bfs_distance_at_most(g, a, b, 2):
                        hits += 1
                return hits

            stats, _ = _timed(bfs_batch, p.repeats, warmup=True)
            self.record(
                "E3", "bench_distance", f"test_bfs_baseline_query[{n}]", {"n": n},
                stats, {"probes": len(probes)},
            )

    # -- E4: neighborhood covers ---------------------------------------

    def run_e4(self) -> None:
        from repro.covers.neighborhood_cover import build_cover

        for n in self.profile.sizes:
            g = self.graph("planar", n)
            stats, cover = _timed(lambda g=g: build_cover(g, 2), 1)
            self.record(
                "E4", "bench_cover", f"test_build_cover[planar-{n}]", {"n": n}, stats,
                {
                    "degree": cover.degree(),
                    "degree_bound_sqrt_n": round(n**0.5, 1),
                    "total_bag_size_over_n": round(cover.total_bag_size() / n, 2),
                },
            )

    # -- E5: the splitter game -----------------------------------------

    def run_e5(self) -> None:
        from repro.splitter.game import rounds_to_win

        p = self.profile
        for family in ("tree", "grid"):
            for n in p.splitter_sizes:
                g = self.graph(family, n)
                stats, rounds = _timed(
                    lambda g=g: rounds_to_win(g, 2, trials=p.splitter_trials), 1
                )
                self.record(
                    "E5", "bench_splitter", f"test_rounds_vs_n[{family}-{n}]",
                    {"n": n, "family": family}, stats, {"rounds": rounds},
                )

    # -- E6: skip pointers ---------------------------------------------

    def run_e6(self) -> None:
        from repro.core.skip_pointers import SkipPointers
        from repro.covers.kernels import kernel_of_bag
        from repro.covers.neighborhood_cover import build_cover

        p = self.profile
        for n in p.sizes:
            g = self.graph("planar", n, seed=0)
            cover = build_cover(g, 2)
            kernels = [kernel_of_bag(g, bag, 2) for bag in cover.bags]
            rng = random.Random(0)
            targets = [v for v in g.vertices() if rng.random() < 0.4]

            stats, skips = _timed(
                lambda: SkipPointers(g.n, targets, kernels, 2), 1
            )
            self.record(
                "E6", "bench_skip", f"test_build[2-{n}]", {"n": n, "k": 2}, stats,
                {
                    "stored_pointers": skips.stored_pointers,
                    "pointers_per_vertex": round(skips.stored_pointers / n, 2),
                },
            )

            rng = random.Random(1)
            probes = [
                (rng.randrange(n), tuple(rng.sample(range(cover.num_bags), 2)))
                for _ in range(p.probes)
            ]

            def query_batch(skips: Any = skips, probes: list = probes) -> None:
                for b, bags in probes:
                    skips.skip(b, bags)

            stats, _ = _timed(query_batch, p.repeats, warmup=True)
            self.record(
                "E6", "bench_skip", f"test_query[{n}]", {"n": n}, stats,
                {"probes": len(probes)},
            )

    # -- E7: constant-time next-solution -------------------------------

    def run_e7(self) -> None:
        from repro.core.engine import build_index

        p = self.profile
        for n in p.sizes:
            g = self.graph("planar", n)
            stats, index = _timed(lambda g=g: build_index(g, _QUERY), 1)
            self._indexes[("planar", n, _QUERY, 1)] = index
            self.record(
                "E7", "bench_next_solution", f"test_build[{n}]", {"n": n}, stats,
                {"method": index.method},
            )

            probes = _pairs(n, p.probes, seed=5)

            def next_batch(index: Any = index, probes: list = probes) -> int:
                found = 0
                for probe in probes:
                    if index.next_solution(probe) is not None:
                        found += 1
                return found

            stats, _ = _timed(next_batch, p.repeats, warmup=True)
            self.record(
                "E7", "bench_next_solution", f"test_next_solution[{n}]", {"n": n},
                stats, {"probes": len(probes)},
            )

    # -- E8: constant-time testing -------------------------------------

    def run_e8(self) -> None:
        from repro.logic.parser import parse_formula
        from repro.logic.semantics import evaluate
        from repro.logic.syntax import Var

        p = self.profile
        phi = parse_formula(_QUERY)
        x, y = Var("x"), Var("y")
        for n in p.sizes:
            index = self.index("planar", n, _QUERY)
            probes = _pairs(n, p.probes, seed=11)

            def test_batch(index: Any = index, probes: list = probes) -> int:
                hits = 0
                for probe in probes:
                    if index.test(probe):
                        hits += 1
                return hits

            stats, _ = _timed(test_batch, p.repeats, warmup=True)
            self.record(
                "E8", "bench_testing", f"test_indexed[{n}]", {"n": n}, stats,
                {"probes": len(probes)},
            )

            g = self.graph("planar", n)

            def naive_batch(g: Any = g, probes: list = probes) -> int:
                hits = 0
                for a, b in probes:
                    if evaluate(g, phi, {x: a, y: b}):
                        hits += 1
                return hits

            stats, _ = _timed(naive_batch, 1)
            self.record(
                "E8", "bench_testing", f"test_naive_baseline[{n}]", {"n": n}, stats,
                {"probes": len(probes)},
            )

    # -- E9: constant-delay enumeration --------------------------------

    def run_e9(self) -> None:
        from repro.metrics.runtime import collect

        p = self.profile
        for n in p.delay_sizes:
            index = self.index("planar", n, _QUERY)

            def enumerate_all(index: Any = index) -> tuple[int, Any]:
                with collect(ops=False) as registry:
                    solutions = 0
                    for _ in index.enumerate():
                        solutions += 1
                return solutions, registry.histograms.get("enumeration.delay_seconds")

            stats, (solutions, hist) = _timed(enumerate_all, 1)
            extra: dict[str, Any] = {"solutions": solutions}
            if hist is not None and hist.count:
                extra.update(
                    delay_mean_us=round(hist.mean * 1e6, 1),
                    delay_p50_us=round(hist.p50 * 1e6, 1),
                    delay_p95_us=round(hist.p95 * 1e6, 1),
                    delay_max_us=round(hist.max * 1e6, 1),
                )
            self.record(
                "E9", "bench_delay", f"test_delay_profile[{n}]", {"n": n}, stats, extra
            )

        for n in p.sizes:
            index = self.index("planar", n, _QUERY)

            def first_hundred(index: Any = index) -> int:
                out = 0
                for _ in index.enumerate():
                    out += 1
                    if out >= 100:
                        break
                return out

            stats, streamed = _timed(first_hundred, p.repeats, warmup=True)
            self.record(
                "E9", "bench_delay", f"test_first_hundred[{n}]", {"n": n}, stats,
                {"streamed": streamed},
            )

    # -- E10: sparsity of the generated families -----------------------

    def run_e10(self) -> None:
        from repro.graphs.sparsity import edge_density_exponent

        for family in ("tree", "grid", "planar", "degree3"):
            for n in self.profile.sizes:
                g = self.graph(family, n)
                stats, exponent = _timed(lambda g=g: edge_density_exponent(g), 1)
                self.record(
                    "E10", "bench_sparsity", f"test_density_exponent[{family}-{n}]",
                    {"n": n, "family": family}, stats,
                    {"exponent": round(exponent, 4)},
                )

    # -- E11: relational-to-graph reduction ----------------------------

    def run_e11(self) -> None:
        from repro.db.adjacency import adjacency_graph
        from repro.db.database import Database, Schema

        for people in self.profile.db_sizes:
            rng = random.Random(0)
            db = Database(Schema({"Friend": 2, "Likes": 2}), domain_size=people)
            for person in range(1, people):
                buddy = rng.randrange(max(0, person - 5), person)
                db.add("Friend", (person, buddy))
                db.add("Friend", (buddy, person))
            for _ in range(people):
                a, b = rng.randrange(people), rng.randrange(people)
                if a != b:
                    db.add("Likes", (a, b))

            stats, encoding = _timed(lambda db=db: adjacency_graph(db), 1)
            self.record(
                "E11", "bench_db_reduction", f"test_adjacency_graph_build[{people}]",
                {"n": people}, stats,
                {"graph_size_over_db_size": round(encoding.graph.size / db.size, 2)},
            )

    # -- E12: index vs materialize-everything --------------------------

    def run_e12(self) -> None:
        from repro.baselines.naive import NaiveIndex
        from repro.core.engine import build_index
        from repro.logic.parser import parse_formula
        from repro.logic.syntax import Var

        phi = parse_formula(_QUERY)
        for n in self.profile.small_sizes:
            g = self.graph("grid", n)

            def materialize(g: Any = g) -> int:
                return len(NaiveIndex(g, phi, (Var("x"), Var("y"))).solutions)

            stats, count = _timed(materialize, 1)
            self.record(
                "E12", "bench_crossover", f"test_naive_materialize[{n}]", {"n": n},
                stats, {"solutions": count},
            )

            stats, index = _timed(lambda g=g: build_index(g, _QUERY), 1)
            self.record(
                "E12", "bench_crossover", f"test_index_build[{n}]", {"n": n}, stats,
                {"method": index.method},
            )

    # -- E13: counting without enumerating -----------------------------

    def run_e13(self) -> None:
        from repro.core.counting import CountingIndex
        from repro.core.engine import build_index
        from repro.logic.parser import parse_formula
        from repro.logic.syntax import Var

        phi = parse_formula(_QUERY)
        for n in self.profile.counting_sizes:
            g = self.graph("grid", n)

            def closed_form(g: Any = g) -> int:
                return CountingIndex(g, phi, (Var("x"), Var("y"))).count()

            stats, count = _timed(closed_form, 1)
            self.record(
                "E13", "bench_counting", f"test_closed_form_count[{n}]", {"n": n},
                stats, {"solutions": count, "solutions_over_n": round(count / n, 1)},
            )

            def enumerate_count(g: Any = g) -> int:
                return build_index(g, _QUERY).count()

            stats, count = _timed(enumerate_count, 1)
            self.record(
                "E13", "bench_counting", f"test_enumerate_count_baseline[{n}]",
                {"n": n}, stats, {"solutions": count},
            )

    # -- E14: dynamic color updates ------------------------------------

    def run_e14(self) -> None:
        from repro.core.dynamic import DynamicUnaryIndex
        from repro.logic.parser import parse_formula
        from repro.logic.syntax import Var

        query = "exists y. E(x, y) & Hot(y)"
        phi = parse_formula(query)
        p = self.profile
        for n in p.dynamic_sizes:
            g = self.graph("planar", n).copy()
            index = DynamicUnaryIndex(g, phi, Var("x"))
            rng = random.Random(2)
            updates = [(rng.randrange(n), rng.random() < 0.5) for _ in range(64)]

            def apply_updates(index: Any = index, updates: list = updates) -> None:
                for v, add in updates:
                    if add:
                        index.add_color("Hot", v)
                    else:
                        index.remove_color("Hot", v)

            stats, _ = _timed(apply_updates, p.repeats, warmup=True)
            self.record(
                "E14", "bench_dynamic", f"test_update[{n}]", {"n": n}, stats,
                {"updates_per_round": len(updates)},
            )

            g2 = self.graph("planar", n).copy()
            rng = random.Random(2)
            g2.set_color("Hot", [v for v in g2.vertices() if rng.random() < 0.2])
            stats, _ = _timed(lambda g2=g2: DynamicUnaryIndex(g2, phi, Var("x")), 1)
            self.record(
                "E14", "bench_dynamic", f"test_rebuild_baseline[{n}]", {"n": n},
                stats, {},
            )

    # -- EA: knob ablations (full profile only by default) -------------

    def run_ea(self) -> None:
        from repro.storage.trie import TrieStore

        n = 2**14 if self.profile.name == "full" else 2**10
        keys = _keys(n, 1, self.profile.trie_keys)
        for eps in (0.25, 0.5, 0.75):

            def build_and_probe(eps: float = eps) -> Any:
                store = TrieStore(n, 1, eps=eps)
                for key in keys:
                    store.insert(key, 0)
                for key in keys:
                    store.lookup(key)
                return store

            stats, store = _timed(build_and_probe, 1)
            self.record(
                "EA", "bench_ablation", f"test_trie_eps[{eps}]", {"eps": eps}, stats,
                {"d": store.d, "h": store.h, "registers": store.registers_used},
            )

    # -- E15: persistence (cold vs warm) + parallel preprocessing -------

    def run_e15(self) -> None:
        """Cold build vs snapshot load, and the ``workers`` fan-out.

        The warm path is the paid-once contract across processes: a valid
        snapshot must answer without rebuilding, and its load time must
        beat cold preprocessing by at least
        :data:`WARM_SPEEDUP_MIN` (gated, like the O(1) rules).
        """
        import tempfile

        from repro.core.config import EngineConfig
        from repro.core.engine import build_index
        from repro.persist import index_fingerprint, load_index, save_index

        p = self.profile
        for n in p.small_sizes:
            g = self.graph("grid", n)

            def cold_build(g: Any = g) -> Any:
                return build_index(g, _QUERY)

            cold_stats, index = _timed(cold_build, p.repeats)
            fingerprint = index_fingerprint(g, _QUERY)
            first_cold = next(index.enumerate(), None)
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "snapshot.rpx"
                header = save_index(index, path, fingerprint)

                def warm_load(path: Path = path, fingerprint: str = fingerprint) -> Any:
                    return load_index(path, expected_fingerprint=fingerprint)

                warm_stats, loaded = _timed(warm_load, p.repeats, warmup=True)
            speedup = cold_stats["mean"] / max(warm_stats["mean"], 1e-9)
            self.record(
                "E15", "bench_persist", f"test_warm_vs_cold[{n}]", {"n": n},
                warm_stats,
                {
                    "cold_build_ms": round(cold_stats["mean"] * 1e3, 2),
                    "warm_load_ms": round(warm_stats["mean"] * 1e3, 3),
                    "warm_speedup_vs_cold": round(speedup, 1),
                    "snapshot_bytes": header["payload_bytes"],
                    "answers_match": next(loaded.enumerate(), None) == first_cold,
                },
            )

            def parallel_build(g: Any = g) -> Any:
                return build_index(
                    g, _QUERY, config=EngineConfig(workers=self.workers)
                )

            par_stats, par_index = _timed(parallel_build, p.repeats)
            self.record(
                "E15", "bench_persist",
                f"test_parallel_build[{self.workers}-{n}]",
                {"n": n, "workers": self.workers},
                par_stats,
                {
                    "parallel_speedup_vs_sequential": round(
                        cold_stats["mean"] / max(par_stats["mean"], 1e-9), 2
                    ),
                    "matches_sequential": (
                        next(par_index.enumerate(), None) == first_cold
                    ),
                },
            )

    # -- E16: pre-fork pool serving (throughput / latency / sharing) ----

    def run_e16(self) -> None:
        """Pooled serving: throughput scaling, tail latency, page sharing.

        Spawns real ``repro serve`` subprocesses against one pre-warmed
        arena snapshot: a single-process baseline, then pre-fork pools of
        1/2/4 workers (``--shards`` at 2x).  Three gated claims ride on
        the records:

        * ``speedup_over_floor`` — pooled throughput must clear a
          machine-aware floor (0.5x per usable core; a 1-core runner can
          only ask the router hop to cost less than 55%);
        * ``p99_headroom`` — open-loop p99 per-answer delay must stay
          within a watchdog-style budget (the watchdog's own multiple
          over its self-calibrated median);
        * ``pss_over_rss`` — the kernel's smaps accounting on the named
          ``memfd:repro-arena`` mappings must show the workers sharing
          pages (proportional-set size well below resident-set size),
          i.e. the register file is mapped, not copied.
        """
        if not hasattr(os, "fork"):
            self.log("  E16 skipped: os.fork unavailable on this platform")
            return
        import http.client
        import re
        import signal
        import subprocess
        import tempfile

        from repro.core.config import EngineConfig
        from repro.core.engine import build_index
        from repro.graphs.generators import FAMILIES
        from repro.persist import cache_path, index_fingerprint, save_index
        from repro.serve.http import wait_until_ready
        from repro.serve.loadgen import closed_loop

        p = self.profile
        quick = p.name == "quick"
        n = 1024 if quick else 2048
        seed = 3
        batch = 64
        duration = 1.0 if quick else 2.0
        host = "127.0.0.1"

        # the exact graph the server will build for the family spec below
        # (NOT self.graph(): _make_graph and FAMILIES differ, and the
        # snapshot fingerprint must match the server's request key)
        graph = FAMILIES["grid"](n, seed=seed)
        index = build_index(graph, _QUERY, config=EngineConfig(layout="arena"))
        fingerprint = index_fingerprint(graph, _QUERY)

        spec = {"family": "grid", "n": n, "seed": seed, "query": _QUERY}
        probes = _pairs(n, max(p.probes, 4 * batch), seed=5)
        bodies: list[bytes] = []
        for start in range(0, len(probes) - batch + 1, batch):
            calls: list[dict[str, Any]] = []
            for i, (u, v) in enumerate(probes[start : start + batch]):
                op = "next" if i % 2 else "test"
                calls.append({"op": op, "tuple": [u, v]})
            bodies.append(json.dumps({**spec, "calls": calls}).encode("utf-8"))
        expected: list[Any] = []
        for i, (u, v) in enumerate(probes[:batch]):
            if i % 2:
                out = index.next_solution((u, v))
                expected.append(None if out is None else list(out))
            else:
                expected.append(index.test((u, v)))

        def start_server(
            snapdir: Path, extra: list[str]
        ) -> tuple[subprocess.Popen, int]:
            cmd = [
                sys.executable, "-m", "repro", "serve",
                "--host", host, "--port", "0",
                "--snapshot-dir", str(snapdir),
            ] + extra
            env = dict(os.environ)
            env["PYTHONPATH"] = (
                str(Path(__file__).resolve().parent.parent)
                + os.pathsep
                + env.get("PYTHONPATH", "")
            )
            proc = subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True, env=env,
            )
            line = proc.stdout.readline() if proc.stdout else ""
            match = re.search(r"http://[^:]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                if wait_until_ready(host, port, deadline_seconds=30.0):
                    return proc, port
            proc.kill()
            proc.wait()
            raise RuntimeError(
                f"serve subprocess failed to start ({' '.join(extra) or 'single'}):"
                f" {line!r}"
            )

        def stop_server(proc: subprocess.Popen) -> None:
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)  # the CLI's clean-close path
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

        def check_oracle(port: int) -> bool:
            conn = http.client.HTTPConnection(host, port, timeout=30.0)
            try:
                conn.request(
                    "POST", "/v1/batch", body=bodies[0],
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read().decode("utf-8"))
            finally:
                conn.close()
            if response.status != 200:
                raise RuntimeError(f"batch oracle got HTTP {response.status}")
            return payload.get("results") == expected

        def measure(port: int) -> Any:
            return closed_loop(
                host, port, "/v1/batch", bodies, batch,
                connections=8, duration_seconds=duration,
                warmup_seconds=0.4,
            )

        cpus = os.cpu_count() or 1
        with tempfile.TemporaryDirectory(prefix="repro-e16-") as tmp:
            snapdir = Path(tmp)
            save_index(index, cache_path(snapdir, fingerprint), fingerprint)

            proc, port = start_server(snapdir, [])
            try:
                answers_ok = check_oracle(port)
                base = measure(port)
            finally:
                stop_server(proc)
            base_aps = max(base.answers_per_second, 1e-9)
            self.record(
                "E16", "bench_serving", f"test_single_throughput[{n}]",
                {"n": n},
                _stats([base.elapsed_seconds / max(base.answers, 1)]),
                {
                    "answers_per_second": round(base_aps, 1),
                    "requests": base.requests,
                    "errors": base.errors,
                    "batch_calls": batch,
                    "answers_match": answers_ok,
                },
            )

            pool_sizes = (1, 2, 4)
            for w in pool_sizes:
                proc, port = start_server(
                    snapdir, ["--pool-workers", str(w), "--shards", str(2 * w)]
                )
                try:
                    answers_ok = check_oracle(port)
                    res = measure(port)
                    aps = res.answers_per_second
                    usable = min(w, cpus)
                    floor = 0.45 if usable == 1 else 0.5 * usable
                    speedup = aps / base_aps
                    self.record(
                        "E16", "bench_serving", f"test_pool_throughput[{w}]",
                        {"n": w},
                        _stats([res.elapsed_seconds / max(res.answers, 1)]),
                        {
                            "workers": w,
                            "shards": 2 * w,
                            "cpu_count": cpus,
                            "answers_per_second": round(aps, 1),
                            "speedup_vs_single": round(speedup, 3),
                            "speedup_floor": round(floor, 3),
                            "speedup_over_floor": round(speedup / floor, 3),
                            "errors": res.errors,
                            "answers_match": answers_ok,
                        },
                    )
                    if w == pool_sizes[-1]:
                        self._e16_latency(host, port, bodies, batch, aps, quick)
                        self._e16_shared_arena(host, port, w)
                finally:
                    stop_server(proc)

    def _e16_latency(
        self,
        host: str,
        port: int,
        bodies: list[bytes],
        batch: int,
        closed_aps: float,
        quick: bool,
    ) -> None:
        """Open-loop tail latency on the 4-worker pool, watchdog-budgeted.

        A low-rate run self-calibrates the budget exactly the way the
        serving watchdog does (median per-answer delay, same default
        multiple); the measured run then offers ~half the closed-loop
        capacity so queueing — not client saturation — is what p99 sees.
        """
        from repro.serve.loadgen import open_loop, percentile
        from repro.trace.watchdog import Watchdog

        batch_rps = max(closed_aps / batch, 10.0)
        wd = Watchdog()
        calib_rate = max(batch_rps * 0.1, 30.0)
        calib = open_loop(
            host, port, "/v1/batch", bodies, batch,
            rate_per_second=calib_rate,
            duration_seconds=max((wd.calibration_samples + 16) / calib_rate, 0.5),
            connections=4,
        )
        for delay in calib.delays:
            wd.observe_step(delay)
        budget = wd.budget_seconds
        if budget is None:  # calibration run too small: median by hand
            ordered = sorted(calib.delays) or [wd.min_budget_seconds]
            budget = max(ordered[len(ordered) // 2], wd.min_budget_seconds)
        res = open_loop(
            host, port, "/v1/batch", bodies, batch,
            rate_per_second=max(batch_rps * 0.5, 20.0),
            duration_seconds=1.5 if quick else 3.0,
            connections=8,
        )
        delays = res.delays or [0.0]
        p99 = percentile(delays, 0.99)
        allowed = budget * wd.multiple
        self.record(
            "E16", "bench_serving", "test_pool_latency[4]", {"n": 4},
            _stats(delays),
            {
                "offered_batches_per_second": round(max(batch_rps * 0.5, 20.0), 1),
                "p50_us": round(percentile(delays, 0.5) * 1e6, 1),
                "p99_us": round(p99 * 1e6, 1),
                "budget_us": round(allowed * 1e6, 1),
                "watchdog_multiple": wd.multiple,
                "p99_headroom": round(allowed / max(p99, 1e-9), 3),
                "late_sends": res.late_sends,
                "errors": res.errors,
            },
        )

    def _e16_shared_arena(self, host: str, port: int, workers: int) -> None:
        """The kernel's own page accounting for the shared arena mappings.

        Every worker pre-faults the ``memfd:repro-arena`` mapping at
        startup, so smaps ``Pss`` (each page divided by its mapper count)
        far below ``Rss`` is direct evidence the pool shares one physical
        copy.  Zeros (non-Linux, object layout) record as unavailable.
        """
        import http.client

        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            conn.request("GET", "/v1/stats")
            payload = json.loads(conn.getresponse().read().decode("utf-8"))
        finally:
            conn.close()
        rss = pss = maps = mapped_workers = 0
        for entry in payload.get("workers", []):
            arena = (entry.get("worker") or {}).get("arena_maps") or {}
            if arena.get("maps"):
                mapped_workers += 1
            maps += int(arena.get("maps", 0))
            rss += int(arena.get("rss_kb", 0))
            pss += int(arena.get("pss_kb", 0))
        shared_bytes = int(payload.get("pool", {}).get("shared_arena_bytes", 0))
        self.record(
            "E16", "bench_serving", f"test_pool_shared_arena[{workers}]",
            {"n": workers},
            _stats([max(rss, 1) * 1e-6]),  # pseudo-timing: rss in "seconds"
            {
                "shared_arena_bytes": shared_bytes,
                "workers_mapped": mapped_workers,
                "arena_maps": maps,
                "rss_kb_total": rss,
                "pss_kb_total": pss,
                "pss_over_rss": round(pss / rss, 3) if rss else 0.0,
                "smaps_available": rss > 0,
            },
        )

    # -- E17: live edge updates (ball-local repair vs rebuild) ----------

    def run_e17(self) -> None:
        """Section 6's open problem, engineered: ``insert_edge``/``delete_edge``.

        Three gated claims ride on the records:

        * ``test_update_repair[n]`` — a fixed batch of alternating
          insert/delete repairs must grow *sublinearly* in ``|G|``
          (fitted log-log exponent below
          :data:`UPDATE_SUBLINEAR_EXPONENT`), unlike the from-scratch
          rebuild it replaces;
        * ``register_equal`` — the differential oracle: after the whole
          edit sequence the repaired index's Storing-Theorem registers
          equal a from-scratch build on the final graph (1.0/0.0);
        * ``test_post_update_next[n]`` stays O(1) (standard shape gate)
          and one arity-2 repair beats one rebuild by
          :data:`REPAIR_SPEEDUP_MIN` (``repair_speedup_vs_rebuild``).
        """
        from repro.core.engine import build_index
        from repro.core.repair import register_dump

        unary_query = "exists y. E(x, y) & Blue(y)"
        p = self.profile
        for n in p.dynamic_sizes:
            g = self.graph("planar", n)
            base = build_index(g, unary_query)
            edits = _edit_sequence(g, random.Random(7), count=8)

            def apply_edits(base: Any = base, edits: list = edits) -> Any:
                index = base  # updates are persistent: replay from base
                for u, v, inserted in edits:
                    index = (
                        index.insert_edge(u, v) if inserted
                        else index.delete_edge(u, v)
                    )
                return index

            stats, updated = _timed(apply_edits, p.repeats, warmup=True)
            rebuild_stats, rebuilt = _timed(
                lambda updated=updated: build_index(updated.graph, unary_query), 1
            )
            self.record(
                "E17", "bench_updates", f"test_update_repair[{n}]", {"n": n},
                stats,
                {
                    "updates_per_round": len(edits),
                    "final_version": updated.version,
                    "rebuild_ms": round(rebuild_stats["mean"] * 1e3, 2),
                    "register_equal": float(
                        register_dump(updated) == register_dump(rebuilt)
                    ),
                },
            )

            probes = [(u,) for u, _ in _pairs(n, p.probes, seed=11)]

            def probe_batch(updated: Any = updated, probes: list = probes) -> None:
                for start in probes:
                    updated.next_solution(start)

            stats, _ = _timed(probe_batch, p.repeats, warmup=True)
            self.record(
                "E17", "bench_updates", f"test_post_update_next[{n}]", {"n": n},
                stats, {"probes": len(probes)},
            )

        # arity-2 running example at the largest size: one repair per
        # update must beat one full rebuild even though the k=2 prefix
        # re-derivation alone is Theta(n) probes.  The grid family keeps
        # the repair ball genuinely local — the planar-like family's
        # logarithmic diameter lets a radius-(bag_radius + r) ball swallow
        # most of the graph, turning "ball-local" into "rebuild"
        n = p.dynamic_sizes[-1]
        g = self.graph("grid", n)
        base = build_index(g, _QUERY)
        edits = _edit_sequence(g, random.Random(13), count=2)

        def apply_pair(base: Any = base, edits: list = edits) -> Any:
            index = base
            for u, v, inserted in edits:
                index = (
                    index.insert_edge(u, v) if inserted
                    else index.delete_edge(u, v)
                )
            return index

        pair_stats, updated = _timed(apply_pair, p.repeats, warmup=True)
        rebuild_stats, rebuilt = _timed(
            lambda: build_index(updated.graph, _QUERY), 1
        )
        per_update = pair_stats["mean"] / len(edits)
        self.record(
            "E17", "bench_updates", f"test_repair_vs_rebuild[{n}]", {"n": n},
            pair_stats,
            {
                "updates_per_round": len(edits),
                "rebuild_ms": round(rebuild_stats["mean"] * 1e3, 2),
                "repair_speedup_vs_rebuild": round(
                    rebuild_stats["mean"] / max(per_update, 1e-9), 2
                ),
                "register_equal": float(
                    register_dump(updated) == register_dump(rebuilt)
                ),
            },
        )

    # -- E18: sampling-profiler overhead --------------------------------

    def run_e18(self) -> None:
        """Profiler overhead: enumeration throughput under default-Hz sampling.

        One gated claim: ``throughput_ratio`` (profiled / baseline
        enumerate-page throughput at :data:`~repro.trace.profiler.DEFAULT_HZ`)
        must stay >= :data:`PROFILER_OVERHEAD_MIN`.  Both arms use
        best-of-``repeats`` timings over an identical workload, with the
        arms interleaved round by round, so one scheduler hiccup cannot
        sink the ratio — the sampler's cost is GIL time only, so the true
        ratio sits near 1.0.
        """
        from repro.trace.profiler import DEFAULT_HZ, SamplingProfiler

        n = self.profile.sizes[-1]
        index = self.index("grid", n, _QUERY)
        page = self.profile.probes

        def one_page(index: Any = index, page: int = page) -> int:
            taken = 0
            for _solution in index.enumerate():
                taken += 1
                if taken >= page:
                    break
            return taken

        one_page()  # warm the lazy structures outside both arms
        # calibrate the round length to span several sampler ticks at
        # DEFAULT_HZ — a round shorter than one tick would "measure"
        # zero-sample overhead
        tick = time.perf_counter()
        one_page()
        single = max(time.perf_counter() - tick, 1e-6)
        reps = max(1, min(500, math.ceil(0.08 / single)))

        def enumerate_pages() -> None:
            for _ in range(reps):
                one_page()

        rounds = max(self.profile.repeats, 3)
        baseline: list[float] = []
        profiled: list[float] = []
        profiler = SamplingProfiler(hz=DEFAULT_HZ)
        for _ in range(rounds):
            tick = time.perf_counter()
            enumerate_pages()
            baseline.append(time.perf_counter() - tick)
            with profiler:
                tick = time.perf_counter()
                enumerate_pages()
                profiled.append(time.perf_counter() - tick)
        # best-of on both arms: the floor of each arm's cost distribution
        # is the comparable number; means drag in unrelated preemption
        ratio = min(baseline) / max(min(profiled), 1e-9)
        self.record(
            "E18", "bench_profiler", f"test_profiler_overhead[{n}]", {"n": n},
            _stats(profiled),
            {
                "throughput_ratio": round(ratio, 4),
                "hz": DEFAULT_HZ,
                "page": page,
                "pages_per_round": reps,
                "rounds": rounds,
                "baseline_ms": round(min(baseline) * 1e3, 3),
                "profiled_ms": round(min(profiled) * 1e3, 3),
                "profiler_samples": profiler.samples,
            },
        )

    # -- dispatch -------------------------------------------------------

    RUNNERS: dict[str, str] = {
        "E1": "run_e1",
        "E3": "run_e3",
        "E4": "run_e4",
        "E5": "run_e5",
        "E6": "run_e6",
        "E7": "run_e7",
        "E8": "run_e8",
        "E9": "run_e9",
        "E10": "run_e10",
        "E11": "run_e11",
        "E12": "run_e12",
        "E13": "run_e13",
        "E14": "run_e14",
        "E15": "run_e15",
        "E16": "run_e16",
        "E17": "run_e17",
        "E18": "run_e18",
        "EA": "run_ea",
    }

    def run(self, experiments: Iterable[str]) -> None:
        for experiment in experiments:
            self.log(f"[{experiment}] ({self.profile.name} profile)")
            getattr(self, self.RUNNERS[experiment])()


def _make_graph(family: str, n: int, seed: int = 1) -> Any:
    from repro.graphs.generators import (
        bounded_degree_random_graph,
        grid,
        random_planar_like_graph,
        random_tree,
    )

    if family == "tree":
        return random_tree(n, seed=seed)
    if family == "grid":
        side = max(int(n**0.5), 2)
        return grid(side, side, seed=seed)
    if family == "planar":
        return random_planar_like_graph(n, seed=seed)
    if family == "degree3":
        return bounded_degree_random_graph(n, degree=3, seed=seed)
    raise ValueError(f"unknown family {family!r}")


# ----------------------------------------------------------------------
# the regression gate


@dataclass(frozen=True)
class GateRule:
    """One O(1) claim the suite re-checks on every run."""

    experiment: str
    group: str
    prefix: str  # record-name prefix selecting the series
    metric: str  # "time" | "extra:<key>"
    claim: str
    #: when set, every point must be >= this value (a bound, not a shape)
    floor: float | None = None
    #: when set, every point must be <= this value
    ceiling: float | None = None
    #: when set, the fitted log-log exponent must stay at or below this —
    #: a *sublinearity* claim rather than an O(1) one, so it is a shape
    #: rule (needs two distinct sizes) with its own threshold
    exponent_ceiling: float | None = None
    #: fewest points for the rule to apply; shape (exponent/flatness)
    #: checks always need two distinct sizes on top of this, while
    #: floor/ceiling rules are meaningful from a single point
    min_points: int = 2


#: smaps Pss/Rss ceiling on the shared arena mappings: with every page
#: mapped by the parent plus >= 1 worker the true ratio is <= 0.5; the
#: slack absorbs smaps' per-mapping kB rounding on small arenas.
POOL_SHARE_MAX = 0.6

#: E18: profiled enumerate-page throughput must stay within 5% of baseline.
PROFILER_OVERHEAD_MIN = 0.95


GATE_RULES = (
    GateRule("E1", "bench_storing", "test_lookup[", "time",
             "Theorem 3.1: O(1) trie lookups"),
    GateRule("E1", "bench_storing", "test_lookup[", "extra:register_ops_per_lookup",
             "Theorem 3.1: flat register ops per lookup"),
    GateRule("E1", "bench_storing", "test_lookup_arena[", "time",
             "Theorem 3.1: O(1) trie lookups (arena layout)"),
    GateRule("E1", "bench_storing", "test_lookup_arena[",
             "extra:register_ops_per_lookup",
             "Theorem 3.1: flat register ops per lookup (arena layout)"),
    GateRule("E1", "bench_storing", "test_lookup_arena[",
             "extra:speedup_vs_object",
             "Arena layout: lookup throughput beats the object layout"),
    GateRule("E3", "bench_distance", "test_query[", "time",
             "Proposition 4.2: O(1) distance tests"),
    GateRule("E7", "bench_next_solution", "test_next_solution[", "time",
             "Theorem 2.3: O(1) next-solution calls"),
    GateRule("E8", "bench_testing", "test_indexed[", "time",
             "Corollary 2.4: O(1) membership tests"),
    GateRule("E9", "bench_delay", "test_delay_profile[", "extra:delay_p95_us",
             "Corollary 2.5: flat p95 enumeration delay"),
    GateRule("E15", "bench_persist", "test_warm_vs_cold[",
             "extra:warm_speedup_vs_cold",
             "Persistence: snapshot load >= 5x faster than cold preprocessing"),
    GateRule("E16", "bench_serving", "test_pool_throughput[",
             "extra:speedup_over_floor",
             "Pool serving: throughput clears the machine-aware worker floor",
             floor=1.0, min_points=1),
    GateRule("E16", "bench_serving", "test_pool_latency[",
             "extra:p99_headroom",
             "Pool serving: open-loop p99 per-answer delay within the "
             "watchdog budget",
             floor=1.0, min_points=1),
    GateRule("E16", "bench_serving", "test_pool_shared_arena[",
             "extra:pss_over_rss",
             "Pool serving: arena pages mmap-shared across workers, not copied",
             ceiling=POOL_SHARE_MAX, min_points=1),
    GateRule("E17", "bench_updates", "test_update_repair[", "time",
             "Section 6: ball-local edge-update repair cost sublinear in |G|",
             exponent_ceiling=0.9),
    GateRule("E17", "bench_updates", "test_post_update_next[", "time",
             "Section 6: O(1) next-solution calls after in-place repair"),
    GateRule("E17", "bench_updates", "test_", "extra:register_equal",
             "Section 6: repaired registers equal a from-scratch rebuild",
             floor=1.0, min_points=1),
    GateRule("E17", "bench_updates", "test_repair_vs_rebuild[",
             "extra:repair_speedup_vs_rebuild",
             "Section 6: one repair beats one from-scratch rebuild",
             floor=1.2, min_points=1),
    GateRule("E18", "bench_profiler", "test_profiler_overhead[",
             "extra:throughput_ratio",
             "Observability: default-Hz sampling keeps enumerate-page "
             "throughput within 5% of baseline",
             floor=PROFILER_OVERHEAD_MIN, min_points=1),
)

#: Timing series fail only when exponent AND spread both look non-constant.
DEFAULT_GATE_EXPONENT = 0.45
DEFAULT_GATE_FLATNESS = 3.0
#: Operation counts are deterministic — hold them to a tight spread.
OPS_GATE_FLATNESS = 2.0
#: The warm path must beat cold preprocessing by at least this factor.
WARM_SPEEDUP_MIN = 5.0
#: Arena lookups must beat the object layout by at least this factor.
#: (Full-profile sizes measure ~2x; the floor leaves room for CI noise on
#: the tiny quick-profile tries.)
ARENA_SPEEDUP_MIN = 1.2


def check_gate(
    payload: dict[str, Any],
    exponent_threshold: float = DEFAULT_GATE_EXPONENT,
    flatness_slack: float = DEFAULT_GATE_FLATNESS,
) -> list[dict[str, Any]]:
    """Evaluate every O(1) gate rule against a suite document.

    Returns one verdict dict per applicable rule: ``{rule, series,
    points, exponent, flatness, passed}``.  Shape rules (exponent and
    flatness) need at least two points at distinct sizes and are skipped
    otherwise; floor/ceiling rules apply from ``rule.min_points`` up —
    they bound every point, so a single measurement already decides them.
    """
    verdicts: list[dict[str, Any]] = []
    for rule in GATE_RULES:
        points: list[tuple[int, float]] = []
        for record in payload.get("benchmarks", []):
            if record.get("group") != rule.group:
                continue
            if not str(record.get("name", "")).startswith(rule.prefix):
                continue
            n = record.get("params", {}).get("n")
            if not isinstance(n, int):
                continue
            if rule.metric == "time":
                value = record.get("stats", {}).get("mean")
            else:
                value = record.get("extra_info", {}).get(
                    rule.metric.split(":", 1)[1]
                )
            # zero is a meaningful *failing* value for floor rules (e.g.
            # register_equal=0.0); dropping it would skip the rule instead
            if isinstance(value, (int, float)) and (
                value > 0 or rule.floor is not None
            ):
                points.append((n, float(value)))
        points.sort()
        bounded = rule.floor is not None or rule.ceiling is not None
        if bounded:
            if len(points) < rule.min_points:
                continue
        elif len(points) < 2 or len({n for n, _ in points}) < 2:
            continue
        xs = [n for n, _ in points]
        ys = [v for _, v in points]
        if len(set(xs)) >= 2 and min(ys) > 0:
            exponent, _ = fit_exponent(xs, ys)
        else:
            exponent = 0.0
        spread = flatness(ys) if min(ys) > 0 else math.inf
        if rule.floor is not None:
            passed = min(ys) >= rule.floor
        elif rule.ceiling is not None:
            passed = max(ys) <= rule.ceiling
        elif rule.exponent_ceiling is not None:
            # sublinearity is a pure shape claim: no flatness escape hatch
            passed = exponent <= rule.exponent_ceiling
        elif rule.metric.startswith("extra:register"):
            passed = spread <= OPS_GATE_FLATNESS
        elif rule.metric == "extra:warm_speedup_vs_cold":
            # a floor, not a flatness check: every point must clear 5x
            passed = min(ys) >= WARM_SPEEDUP_MIN
        elif rule.metric == "extra:speedup_vs_object":
            # also a floor: the flat arena must stay ahead at every size
            passed = min(ys) >= ARENA_SPEEDUP_MIN
        else:
            passed = exponent <= exponent_threshold or spread <= flatness_slack
        verdicts.append(
            {
                "rule": rule.claim,
                "series": f"{rule.group}::{rule.prefix}*",
                "metric": rule.metric,
                "points": points,
                "exponent": round(exponent, 3),
                "flatness": round(spread, 2),
                "passed": passed,
            }
        )
    return verdicts


# ----------------------------------------------------------------------
# orchestration


def machine_info() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def run_suite(
    profile: Profile,
    experiments: Iterable[str] | None = None,
    log: Callable[[str], None] = lambda line: None,
    workers: int = 2,
) -> dict[str, Any]:
    """Run the suite and return the (already validated) result document."""
    if experiments is None:
        chosen = list(ALL_EXPERIMENTS)
        if profile.name == "full":
            chosen += list(FULL_ONLY_EXPERIMENTS)
    else:
        chosen = list(experiments)
    unknown = [e for e in chosen if e not in BenchSuite.RUNNERS]
    if unknown:
        raise ValueError(
            f"unknown experiment id(s) {unknown}; "
            f"known: {sorted(BenchSuite.RUNNERS)}"
        )
    suite = BenchSuite(profile, log=log, workers=workers)
    started = time.perf_counter()
    suite.run(chosen)
    payload = {
        "suite_version": SUITE_VERSION,
        "schema": SCHEMA_NAME,
        "created": _datetime.datetime.now().isoformat(timespec="seconds"),
        "profile": profile.name,
        "machine_info": machine_info(),
        "experiments": chosen,
        "benchmarks": suite.records,
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    problems = validate_results(payload)
    if problems:  # a bug in this module, not in the caller's input
        raise AssertionError(
            "bench-suite produced a non-conforming document: "
            + "; ".join(problems[:5])
        )
    return payload


def write_results(payload: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# CLI


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``repro bench-suite`` and ``python -m repro.benchrunner``."""
    parser.add_argument(
        "--quick", action="store_true",
        help="shrunk sweeps for CI smoke runs (minutes -> seconds)",
    )
    parser.add_argument(
        "-o", "--output", default=DEFAULT_OUTPUT,
        help=f"result JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--experiments", default=None, metavar="IDS",
        help="comma-separated experiment ids to run (e.g. E1,E3,E9); "
        "default: all of " + ",".join(ALL_EXPERIMENTS),
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="skip the O(1) regression gate (exit 0 even on growth)",
    )
    parser.add_argument(
        "--gate-exponent", type=float, default=DEFAULT_GATE_EXPONENT,
        help="max fitted log-log exponent an O(1) series may show "
        f"(default: {DEFAULT_GATE_EXPONENT})",
    )
    parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="also render the markdown report to FILE (e.g. EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="thread count for E15's parallel-preprocessing arm (default: 2)",
    )


def run_cli(args: argparse.Namespace) -> int:
    profile = QUICK if args.quick else FULL
    experiments = None
    if args.experiments:
        experiments = [e.strip() for e in args.experiments.split(",") if e.strip()]
    try:
        payload = run_suite(
            profile, experiments,
            log=lambda line: print(line),
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"bench-suite: {exc}", file=sys.stderr)
        return 2
    write_results(payload, args.output)
    print(
        f"wrote {args.output}: {len(payload['benchmarks'])} records, "
        f"{payload['wall_seconds']}s ({profile.name} profile)"
    )

    if args.report:
        from repro.reporting import render_benchmarks

        Path(args.report).write_text(render_benchmarks(payload["benchmarks"]))
        print(f"wrote {args.report}")

    if args.no_gate:
        return 0
    failures = 0
    for verdict in check_gate(payload, exponent_threshold=args.gate_exponent):
        status = "ok  " if verdict["passed"] else "FAIL"
        print(
            f"gate {status} {verdict['rule']} — exponent {verdict['exponent']}, "
            f"spread {verdict['flatness']}x over {verdict['series']}"
        )
        if not verdict["passed"]:
            failures += 1
    if failures:
        print(f"bench-suite: {failures} O(1) gate rule(s) failed", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchrunner",
        description="Run the paper's benchmark suite without pytest-benchmark.",
    )
    add_arguments(parser)
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
