"""Benchmark reporting: turn benchmark JSON into experiment tables.

``python -m repro bench-suite`` (or, historically, ``pytest benchmarks/
--benchmark-only --benchmark-json=...``) produces a machine-readable
record; :func:`render_report` groups it by experiment (one group per
``bench_*`` file), sorts each group by the swept parameter, and emits
the markdown tables EXPERIMENTS.md embeds.  Both producers share the
``benchmarks[*].fullname/name/stats/extra_info`` layout, so one renderer
serves both.

Malformed input — a missing file, an empty/truncated write, or invalid
JSON — raises :exc:`ReportError`; the CLI turns that into a one-line
message on stderr and exit code 2, never a traceback.

Usage::

    python -m repro.reporting BENCH_results.json > report.md
"""

from __future__ import annotations

import json
import re
import sys
from collections import defaultdict
from pathlib import Path

from repro.errors import ReproError


class ReportError(ReproError):
    """A benchmark results file could not be read or parsed."""

    exit_code = 2

#: bench file stem -> (experiment id, the claim the series checks)
EXPERIMENTS = {
    "bench_storing": ("E1", "Storing Theorem: O(1) lookup, O(n^eps) update (Thm 3.1)"),
    "bench_distance": ("E3", "Distance testing O(1) after pseudo-linear prep (Prop 4.2)"),
    "bench_cover": ("E4", "Neighborhood covers: pseudo-linear, small degree (Thm 4.4)"),
    "bench_splitter": ("E5", "Splitter wins in rounds independent of n (Thm 4.6)"),
    "bench_skip": ("E6", "Skip pointers: O(1) queries (Lemma 5.8)"),
    "bench_next_solution": ("E7", "Next-solution O(1) after pseudo-linear prep (Thm 2.3)"),
    "bench_testing": ("E8", "Testing O(1), baseline grows (Cor 2.4)"),
    "bench_delay": ("E9", "Constant-delay enumeration (Cor 2.5)"),
    "bench_sparsity": ("E10", "Nowhere dense density exponent -> 1 (Thm 2.1)"),
    "bench_db_reduction": ("E11", "Relational reduction is linear (Lemma 2.2)"),
    "bench_crossover": ("E12", "Index vs materialize-everything crossover"),
    "bench_counting": ("E13", "Counting without enumerating ([18])"),
    "bench_dynamic": ("E14", "Color updates in ball-sized time (Sec. 6 direction)"),
    "bench_ablation": ("EA", "Ablations of the engineering knobs"),
}

_PARAM_ORDER_RE = re.compile(r"\[(.*)\]")


def _param_sort_key(name: str):
    match = _PARAM_ORDER_RE.search(name)
    if not match:
        return (name,)
    parts = match.group(1).split("-")
    key = []
    for part in parts:
        try:
            key.append((0, int(part)))
        except ValueError:
            key.append((1, part))
    return tuple(key)


def load_results(path: str | Path) -> list[dict]:
    """The benchmark entries of a results JSON file.

    Raises :exc:`ReportError` (with a one-line, actionable message) when
    the file is missing, empty, truncated, or not a benchmark document —
    the usual leftovers of an interrupted benchmark run.
    """
    source = Path(path)
    try:
        text = source.read_text()
    except FileNotFoundError:
        raise ReportError(f"{source}: no such file") from None
    except OSError as exc:
        raise ReportError(f"{source}: {exc.strerror or exc}") from None
    if not text.strip():
        raise ReportError(
            f"{source}: file is empty — the benchmark run that wrote it was "
            "interrupted; re-run `python -m repro bench-suite`"
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReportError(
            f"{source}: invalid JSON at line {exc.lineno} column {exc.colno} "
            f"({exc.msg}) — likely a truncated benchmark run"
        ) from None
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise ReportError(
            f"{source}: not a benchmark results document (no 'benchmarks' key)"
        )
    benchmarks = data["benchmarks"]
    if not isinstance(benchmarks, list):
        raise ReportError(f"{source}: 'benchmarks' should be a list")
    return benchmarks


def group_by_experiment(benchmarks: list[dict]) -> dict[str, list[dict]]:
    """Bucket benchmark entries by their bench_* file, sorted by parameter."""
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in benchmarks:
        stem = Path(bench.get("fullname", "")).name.split(".py")[0]
        groups[stem].append(bench)
    for group in groups.values():
        group.sort(key=lambda b: (_base_name(b["name"]), _param_sort_key(b["name"])))
    return dict(groups)


def _base_name(name: str) -> str:
    return name.split("[")[0]


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def render_group(stem: str, benchmarks: list[dict]) -> str:
    """One experiment's markdown section (claim header + measurement table)."""
    experiment, claim = EXPERIMENTS.get(stem, ("?", stem))
    lines = [f"### {experiment} — {claim}", ""]
    lines.append("| benchmark | mean | extra |")
    lines.append("|---|---|---|")
    for bench in benchmarks:
        mean = _format_seconds(bench["stats"]["mean"])
        extra = bench.get("extra_info", {})
        extra_text = ", ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        lines.append(f"| `{bench['name']}` | {mean} | {extra_text} |")
    lines.append("")
    return "\n".join(lines)


def _experiment_sort_key(stem: str) -> tuple:
    experiment = EXPERIMENTS.get(stem, ("Z",))[0]
    match = re.fullmatch(r"E(\d+)", experiment)
    if match:
        return (0, int(match.group(1)))
    return (1, experiment)


def render_benchmarks(benchmarks: list[dict]) -> str:
    """The full markdown report for a list of benchmark entries."""
    groups = group_by_experiment(benchmarks)
    ordered = sorted(groups.items(), key=lambda kv: _experiment_sort_key(kv[0]))
    sections = [render_group(stem, group) for stem, group in ordered]
    header = (
        "# Benchmark report\n\n"
        f"{len(benchmarks)} measurements across {len(groups)} experiments.\n"
    )
    return header + "\n" + "\n".join(sections)


def render_report(path: str | Path) -> str:
    """The full markdown report for one benchmark JSON file."""
    return render_benchmarks(load_results(path))


def main(argv: list[str] | None = None) -> int:
    """CLI: render the report for one JSON file to stdout."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.reporting BENCH_results.json", file=sys.stderr)
        return 2
    try:
        report = render_report(argv[0])
    except ReportError as exc:
        print(f"repro.reporting: {exc}", file=sys.stderr)
        return 2
    try:
        print(report)
    except BrokenPipeError:  # e.g. `... | head` closed the pipe early
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
