"""Counting solutions in pseudo-linear time.

The paper's introduction cites Grohe–Schweikardt [18]: over nowhere
dense classes, ``|q(G)|`` is computable in pseudo-linear time — i.e.
*without* enumerating the (possibly quadratic) result set.

For binary queries we reproduce that claim on top of the Lemma 5.2
machinery.  Distance types partition the tuples, so

    ``|q(G)| = Σ_a ( close(a) + far(a) )``

with, per vertex ``a``:

* ``close(a)`` — solutions ``(a, b)`` with ``b`` near ``a``: the union of
  the per-alternative bag columns inside ``X(a)`` (bag-sized work, cached
  per ``a``);
* ``far(a)`` — solutions with ``b`` far from ``a``: by the kernel
  argument (Section 5.2.2, Case I), every far ``b`` is either outside
  ``K_r(X(a))`` — counted as ``|L| - |L ∩ K_r(X(a))|`` with the kernel
  intersection precomputed per bag — or inside the kernel, counted by a
  bag search.  ``L`` is the union of the live alternatives' unary
  solution lists (cached per live-subset).

Total work: one bag-sized computation per vertex plus one kernel scan
per (live-subset, bag) — pseudo-linear on sparse inputs, and crucially
*independent of* ``|q(G)|``.  Higher arities fall back to enumeration
(the module reports which path was taken).
"""

from __future__ import annotations

from repro.contracts import amortized, pseudo_linear
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.enumeration import enumerate_solutions
from repro.core.next_solution import NextSolutionIndex
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.syntax import Formula, Top, Var


class CountingIndex:
    """``|q(G)|`` and per-prefix counts, without materializing ``q(G)``.

    Parameters mirror :class:`~repro.core.next_solution.NextSolutionIndex`;
    construction performs Theorem 2.3's preprocessing once and reuses it.
    """

    @pseudo_linear(note="Theorem 2.3 preprocessing, shared with enumeration")
    def __init__(
        self,
        graph: ColoredGraph,
        phi: Formula,
        free_order: tuple[Var, ...],
        config: EngineConfig = DEFAULT_CONFIG,
    ) -> None:
        self.graph = graph
        self.free_order = tuple(free_order)
        self.k = len(self.free_order)
        self.index = NextSolutionIndex(graph, phi, self.free_order, config)
        self.method = "closed-form" if self.k == 2 else "enumerate"
        if self.k == 2:
            self._last = self.index.last
            self._union_l_cache: dict[frozenset[int], list[int]] = {}
            self._kernel_intersection_cache: dict[tuple[frozenset[int], int], int] = {}
            self._column_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    def count(self) -> int:
        """``|q(G)|``."""
        if self.k == 0:
            return 1 if self.index.test(()) else 0
        if self.k == 1:
            return len(self.index._unary)
        if self.k == 2:
            return sum(self.count_suffixes(a) for a in self.graph.vertices())
        return sum(1 for _ in enumerate_solutions(self.index))

    @amortized("O(1)", note="bag-sized work on first query per vertex, then cached")
    def count_suffixes(self, a: int) -> int:
        """``|{b : (a, b) ∈ q(G)}|`` — constant amortized time for k = 2."""
        if self.k != 2:
            raise ValueError("count_suffixes requires a binary query")
        cached = self._column_cache.get(a)
        if cached is None:
            cached = self._count_close(a) + self._count_far(a)
            self._column_cache[a] = cached
        return cached

    # ------------------------------------------------------------------
    # the close part: b inside the bag of a
    # ------------------------------------------------------------------
    def _count_close(self, a: int) -> int:
        last = self._last
        close_types = [
            tau for tau in last.decomp.per_type if tau.edges  # k=2: one edge
        ]
        total: set[int] = set()
        for tau in close_types:
            for alt in last.decomp.per_type[tau]:
                if not last._sentence_true(alt.sentence):
                    continue
                bag_id = last.cover.bag_of(a)
                solver, to_new, to_old = last._solver(bag_id)
                component = frozenset((0, 1))
                query, prefix_vars = last._bag_query(alt, tau, component, 0)
                column = solver.column(
                    query, prefix_vars, (to_new[a],), last.free_order[-1]
                )
                total.update(to_old[b] for b in column)
        return len(total)

    # ------------------------------------------------------------------
    # the far part: b outside the r-ball of a (Case I accounting)
    # ------------------------------------------------------------------
    def _live_far_alternatives(self, a: int):
        last = self._last
        far_types = [tau for tau in last.decomp.per_type if not tau.edges]
        live = []
        for tau in far_types:
            for alt_id, alt in enumerate(last.decomp.per_type[tau]):
                if not last._sentence_true(alt.sentence):
                    continue
                prefix_psi = alt.local_for(frozenset((0,)))
                if not isinstance(prefix_psi, Top):
                    if not last._test_component(frozenset((0,)), prefix_psi, (a,)):
                        continue
                live.append((tau, alt_id, alt))
        return live

    def _union_l(self, key: frozenset[int], alternatives) -> list[int]:
        cached = self._union_l_cache.get(key)
        if cached is None:
            union: set[int] = set()
            last = self._last
            for _, _, alt in alternatives:
                psi = alt.local_for(frozenset((1,)))
                targets, _ = last._far_structures(psi)
                union.update(targets)
            cached = sorted(union)
            self._union_l_cache[key] = cached
        return cached

    def _kernel_intersection(self, key: frozenset[int], union_l: list[int], bag_id: int) -> int:
        cache_key = (key, bag_id)
        cached = self._kernel_intersection_cache.get(cache_key)
        if cached is None:
            members = set(union_l)
            cached = sum(1 for v in self._last.kernels[bag_id] if v in members)
            self._kernel_intersection_cache[cache_key] = cached
        return cached

    def _count_far(self, a: int) -> int:
        last = self._last
        live = self._live_far_alternatives(a)
        if not live:
            return 0
        key = frozenset(alt_id for _, alt_id, _ in live)
        union_l = self._union_l(key, live)
        bag_id = last.cover.bag_of(a)
        # b outside the kernel of X(a): guaranteed far (the Case I argument)
        outside = len(union_l) - self._kernel_intersection(key, union_l, bag_id)
        # b inside the kernel: search the bag with the far constraints
        solver, to_new, to_old = last._solver(bag_id)
        in_kernel: set[int] = set()
        for tau, _, alt in live:
            query, prefix_vars = last._bag_query(alt, tau, frozenset((1,)), 1)
            column = solver.column(
                query, prefix_vars, (to_new[a],), last.free_order[-1]
            )
            in_kernel.update(to_old[b] for b in column)
        return outside + len(in_kernel)


def count_solutions(
    graph: ColoredGraph,
    phi: Formula,
    free_order: tuple[Var, ...],
    config: EngineConfig = DEFAULT_CONFIG,
) -> int:
    """One-shot counting (builds a :class:`CountingIndex` and discards it)."""
    return CountingIndex(graph, phi, free_order, config).count()
