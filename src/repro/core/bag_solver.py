"""Per-bag last-coordinate search (preprocessing Steps 8-11 of Section 5.2.1).

A :class:`BagSolver` owns one bag's induced subgraph and answers, for any
FO+ query ``psi`` on the bag:

* ``test(psi, vars, values)`` — does the bag satisfy ``psi(values)``?
* ``first_at_least(psi, prefix, last_var, lower)`` — the smallest last
  coordinate ``b >= lower`` with ``bag |= psi(prefix, b)``.

Structure, mirroring the paper:

* **small bags** (``n <= naive_threshold``) are handled by the memoized
  naive evaluator — the Step 1 cutoff.  Columns are computed once per
  ``(psi, prefix)`` and then served by binary search, so repeated queries
  are constant time.
* **larger bags** pick Splitter's vertex ``s`` (Step 8), rewrite every
  incoming query through the Removal Lemma for each subset of variables
  equal to ``s`` (Step 9), and delegate to a child solver on the
  recolored ``bag - s`` (Steps 10/11).  The answer is the minimum of the
  child's answer and ``s`` itself (checked through the ``ȳ ∪ {x_k}``
  rewriting), exactly the two candidates of the answering phase.

The recursion depth is capped (the stand-in for the paper's constant λ);
past the cap the solver is naive regardless of size, which stays exact.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort

from repro.contracts import amortized, frozen_after_build, pseudo_linear, read_only
from repro.core.local_eval import LocalEvaluator
from repro.core.removal import RemovalResult, remove_vertex, rewrite_without_vertex
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.syntax import Formula, Var
from repro.splitter.strategies import default_strategy

#: Bags at most this large are solved by the memoized naive evaluator.
DEFAULT_BAG_NAIVE_THRESHOLD = 220

#: Depth cap for the removal recursion (λ's stand-in).
DEFAULT_MAX_REMOVAL_DEPTH = 12


@frozen_after_build(cells={"_rewrites": "_memo_lock", "_test_cache": "_memo_lock", "_column_cache": "_memo_lock"})
class BagSolver:
    """Lemma 5.2's machinery scoped to a single bag.

    Parameters
    ----------
    graph:
        The bag's induced subgraph, compactly relabeled.
    max_bound:
        Largest distance bound any query will mention (fixes the colors
        produced by the Removal Lemma once, at construction).
    """

    #: Store lock for the memo cells declared in ``@frozen_after_build``;
    #: class-level (shared down the child chain) so instances pickle.
    _memo_lock = threading.Lock()

    @pseudo_linear(note="Steps 8-10: splitter choice + removal recursion")
    def __init__(
        self,
        graph: ColoredGraph,
        max_bound: int,
        naive_threshold: int = DEFAULT_BAG_NAIVE_THRESHOLD,
        max_depth: int = DEFAULT_MAX_REMOVAL_DEPTH,
        _depth: int = 0,
    ) -> None:
        self.graph = graph
        self.max_bound = max(1, max_bound)
        self.naive_threshold = naive_threshold
        if graph.n <= naive_threshold or graph.num_edges == 0 or _depth >= max_depth:
            self._mode = "naive"
            self._eval = LocalEvaluator(graph)
        else:
            self._mode = "splitter"
            strategy = default_strategy(graph)
            vertices = list(graph.vertices())
            self._s = strategy.choose(graph, vertices, vertices, vertices[0], 1)
            self._removal: RemovalResult = remove_vertex(graph, self._s, self.max_bound)
            self._rewrites: dict[tuple[Formula, frozenset[Var]], Formula] = {}
            self._test_cache: dict[tuple, bool] = {}
            self._column_cache: dict[tuple, list[int]] = {}
            self.child = BagSolver(
                self._removal.graph,
                self.max_bound,
                naive_threshold,
                max_depth,
                _depth + 1,
            )

    # ------------------------------------------------------------------
    @property
    @read_only
    def mode(self) -> str:
        """"naive" (Step-1 cutoff) or "splitter" (removal recursion)."""
        return self._mode

    @property
    @read_only
    def removal_depth(self) -> int:
        """How many removal levels sit below this solver."""
        if self._mode == "naive":
            return 0
        return 1 + self.child.removal_depth

    @read_only
    def _rewrite(self, psi: Formula, s_vars: frozenset[Var]) -> Formula:
        key = (psi, s_vars)
        cached = self._rewrites.get(key)
        if cached is None:
            fresh = rewrite_without_vertex(
                psi, s_vars, self.graph, self._s, self._removal.color_prefix
            )
            with self._memo_lock:
                cached = self._rewrites.setdefault(key, fresh)
        return cached

    # ------------------------------------------------------------------
    # testing (Step 11 / Corollary 2.4 inside the bag)
    # ------------------------------------------------------------------
    @amortized("O(1)", note="memoized per (psi, values); first query pays the walk")
    @read_only
    def test(self, psi: Formula, free_order: tuple[Var, ...], values: tuple[int, ...]) -> bool:
        """Does the bag satisfy ``psi(values)``?  (Step 11 functionality.)"""
        if self._mode == "naive":
            return self._eval.test(psi, free_order, values)
        key = (psi, free_order, values)
        cached = self._test_cache.get(key)
        if cached is not None:
            return cached
        s = self._s
        s_vars = frozenset(v for v, val in zip(free_order, values) if val == s)
        rewritten = self._rewrite(psi, s_vars)
        reduced_order = tuple(v for v, val in zip(free_order, values) if val != s)
        reduced_values = tuple(self._removal.to_new[val] for val in values if val != s)
        result = self.child.test(rewritten, reduced_order, reduced_values)
        with self._memo_lock:
            result = self._test_cache.setdefault(key, result)
        return result

    # ------------------------------------------------------------------
    # last-coordinate search (Step 10 / the answering-phase candidates)
    # ------------------------------------------------------------------
    @amortized("O(1)", note="memoized per (psi, prefix); served by lookup after")
    @read_only
    def column(
        self,
        psi: Formula,
        prefix_order: tuple[Var, ...],
        prefix_values: tuple[int, ...],
        last_var: Var,
    ) -> list[int]:
        """All bag vertices ``b`` with ``bag |= psi(prefix, b)``, sorted.

        The memoized primitive of the solver: in splitter mode the column
        is the child's column (translated back through the
        order-preserving relabeling) plus possibly the Splitter vertex
        itself, checked through the ``ȳ ∪ {x_k}`` rewriting — the two
        candidate kinds of the answering phase.
        """
        if self._mode == "naive":
            return self._eval.column(psi, prefix_order, prefix_values, last_var)
        key = (psi, prefix_order, prefix_values, last_var)
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached
        s = self._s
        s_vars = frozenset(v for v, val in zip(prefix_order, prefix_values) if val == s)
        reduced_order = tuple(
            v for v, val in zip(prefix_order, prefix_values) if val != s
        )
        reduced_values = tuple(
            self._removal.to_new[val] for val in prefix_values if val != s
        )
        live = self._rewrite(psi, s_vars)
        child_column = self.child.column(live, reduced_order, reduced_values, last_var)
        to_old = self._removal.to_old
        out = [to_old[b] for b in child_column]  # still ascending: order-preserving
        as_s = self._rewrite(psi, s_vars | {last_var})
        if self.child.test(as_s, reduced_order, reduced_values):
            insort(out, s)
        with self._memo_lock:
            out = self._column_cache.setdefault(key, out)
        return out

    @amortized("O(1)", note="binary search over the memoized column")
    @read_only
    def first_at_least(
        self,
        psi: Formula,
        prefix_order: tuple[Var, ...],
        prefix_values: tuple[int, ...],
        last_var: Var,
        lower: int,
    ) -> int | None:
        """Smallest ``b >= lower`` (bag ids) with ``bag |= psi(prefix, b)``."""
        column = self.column(psi, prefix_order, prefix_values, last_var)
        index = bisect_left(column, lower)
        return column[index] if index < len(column) else None
