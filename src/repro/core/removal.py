"""The Removal Lemma (Lemma 5.5, after [18, Lemma 7.8]).

Given a colored graph ``G``, a vertex ``s`` and an FO+ query ``phi``, we
produce a recoloring ``H`` of ``G - s`` and a query ``phi'`` such that

    ``G |= phi(b̄)``  iff  ``H |= phi'(b̄ with the s-components dropped)``

whenever the components of ``b̄`` equal to ``s`` are exactly the declared
ones.  Crucially the rewriting preserves q-rank: distance-atom bounds are
never increased and no quantifiers are added.

Construction:

* **colors** — for every distance bound ``d`` appearing in ``phi`` (and
  ``1`` for edge atoms) add a color ``@s:d`` on ``H`` whose extension is
  ``{w : dist_G(w, s) <= d}`` (one bounded BFS in ``G``);
* **quantifiers** — a quantifier over ``G`` also ranges over ``s``, while
  in ``H`` it does not, so ``∃z ψ`` becomes ``∃z ψ' ∨ ψ'[z := s]`` and
  ``∀z ψ`` becomes ``∀z ψ' ∧ ψ'[z := s]``;
* **atoms** mentioning an ``s``-variable collapse to colors/constants:
  ``E(x, s) -> @s:1(x)`` (minus equality), ``dist(x, s) <= d -> @s:d(x)``,
  ``x = s -> false`` for live variables, colors of ``s`` to constants;
* **distance atoms between live variables** must account for lost paths
  through ``s``: ``dist(x,y) <= d`` becomes
  ``dist(x,y) <= d  ∨  ⋁_{i+j <= d, i,j >= 1} (@s:i(x) ∧ @s:j(y))``
  — the Example 1-C pattern.

``H`` keeps the ambient vertex ids of ``G`` minus ``s`` *relabeled
compactly and order-preservingly* so lexicographic enumeration in the bag
agrees with the ambient order (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.logic.ranks import max_distance_bound
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)


@dataclass(frozen=True)
class RemovalResult:
    """Output of :func:`remove_vertex`.

    Attributes
    ----------
    graph:
        ``H`` — the recoloring of ``G - s`` (compact, order-preserving ids).
    to_new / to_old:
        Vertex translations between ``G`` and ``H``.
    color_prefix:
        The tag used for the fresh distance colors (``f"{prefix}:{d}"``).
    """

    graph: ColoredGraph
    to_new: dict[int, int]
    to_old: list[int]
    color_prefix: str


_removal_counter = [0]


def remove_vertex(graph: ColoredGraph, s: int, max_bound: int) -> RemovalResult:
    """Build the recolored graph ``H`` of Lemma 5.5 for vertex ``s``.

    ``max_bound`` is the largest distance bound any rewritten query will
    mention (take ``max(1, max_distance_bound(phi))``).  Runs in time
    linear in ``||G||`` (one bounded BFS plus the subgraph copy).
    """
    _removal_counter[0] += 1
    prefix = f"@s{_removal_counter[0]}"
    keep = [v for v in graph.vertices() if v != s]
    sub, original = graph.relabeled_subgraph(keep)
    to_new = {v: i for i, v in enumerate(original)}
    dist_to_s = bounded_bfs(graph, [s], max(1, max_bound))
    for d in range(1, max(1, max_bound) + 1):
        members = [to_new[w] for w, dw in dist_to_s.items() if 0 < dw <= d]
        sub.set_color(f"{prefix}:{d}", members)
    return RemovalResult(sub, to_new, original, prefix)


def rewrite_without_vertex(
    phi: Formula,
    s_vars: frozenset[Var],
    graph: ColoredGraph,
    s: int,
    color_prefix: str,
) -> Formula:
    """The query transformation of Lemma 5.5.

    ``s_vars`` are the variables currently standing for the removed vertex
    ``s``; ``graph`` is the *original* graph (needed only for the colors
    of ``s`` itself, which fold to constants).  The result mentions the
    ``f"{color_prefix}:{d}"`` colors produced by :func:`remove_vertex`.
    """

    def color_at_most(var: Var, d: int) -> Formula:
        return ColorAtom(f"{color_prefix}:{d}", var)

    def walk(node: Formula, s_vars: frozenset[Var]) -> Formula:
        if isinstance(node, (Top, Bottom)):
            return node
        if isinstance(node, EqAtom):
            left_s = node.left in s_vars
            right_s = node.right in s_vars
            if left_s and right_s:
                return Top()
            if left_s or right_s:
                return Bottom()  # a live variable never denotes the removed s
            return node
        if isinstance(node, EdgeAtom):
            left_s = node.left in s_vars
            right_s = node.right in s_vars
            if left_s and right_s:
                return Bottom()  # no self-loops
            if left_s:
                return color_at_most(node.right, 1)
            if right_s:
                return color_at_most(node.left, 1)
            return node
        if isinstance(node, ColorAtom):
            if node.var in s_vars:
                return Top() if graph.has_color(s, node.color) else Bottom()
            return node
        if isinstance(node, DistAtom):
            left_s = node.left in s_vars
            right_s = node.right in s_vars
            if left_s and right_s:
                return Top()  # dist(s, s) = 0 <= d
            if left_s or right_s:
                live = node.right if left_s else node.left
                if node.bound == 0:
                    return Bottom()  # live variable equal to s is impossible
                return color_at_most(live, node.bound)
            if node.bound == 0:
                return node
            # account for paths through s: split dist(x,s)=i, dist(s,y)=j
            through = [
                And((color_at_most(node.left, i), color_at_most(node.right, node.bound - i)))
                for i in range(1, node.bound)
            ]
            return Or((node, *through)) if through else node
        if isinstance(node, Not):
            return Not(walk(node.body, s_vars))
        if isinstance(node, And):
            return And(tuple(walk(p, s_vars) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(walk(p, s_vars) for p in node.parts))
        if isinstance(node, Exists):
            live = walk(node.body, s_vars - {node.var})
            as_s = walk(node.body, s_vars | {node.var})
            return Or((Exists(node.var, live), as_s))
        if isinstance(node, Forall):
            live = walk(node.body, s_vars - {node.var})
            as_s = walk(node.body, s_vars | {node.var})
            return And((Forall(node.var, live), as_s))
        raise TypeError(f"unknown formula node: {node!r}")

    return walk(phi, s_vars)


def removal_rewrite(
    phi: Formula,
    graph: ColoredGraph,
    s: int,
    s_vars: frozenset[Var] = frozenset(),
) -> tuple[Formula, RemovalResult]:
    """One-stop Lemma 5.5: returns ``(phi', H)`` for removing ``s``.

    ``s_vars`` are the free variables of ``phi`` declared equal to ``s``
    (the lemma's ``ȳ``); they do not occur free in ``phi'``.
    """
    bound = max(1, max_distance_bound(phi))
    removal = remove_vertex(graph, s, bound)
    rewritten = rewrite_without_vertex(phi, s_vars, graph, s, removal.color_prefix)
    return rewritten, removal
