"""Dynamic color updates — a step toward the paper's open problem.

The conclusion (Section 6) asks for index structures that survive
*updates* without full recomputation, citing the word/tree results
[28, 2]; for nowhere dense graphs the question is open.  We implement the
tractable slice the Storing Theorem already pays for: **unary queries
under color updates**.

When a color flips on vertex ``v``, the only vertices whose answer can
change are those whose certified locality ball contains ``v`` — i.e.
``N_rho(v)`` for the query's guard radius ``rho``.  The update
re-evaluates the query on that ball (bag-local, as in preprocessing) and
edits the Theorem 3.1 structure: ``O(ball * local-eval + n^eps)`` per
update, while queries stay constant time.  Edge updates would change the
cover itself and are out of scope (as the paper suspects they must be,
short of logarithmic-update techniques).
"""

from __future__ import annotations

from repro.contracts import builds, constant_time, delay, pseudo_linear, read_only
from repro.core.normal_form import DecompositionError, locality_radius, normalize
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.logic.semantics import DistanceCache, evaluate
from repro.logic.syntax import Formula, Var
from repro.storage.function_store import StoredFunction


class DynamicUnaryIndex:
    """A unary-query index supporting color updates.

    Parameters
    ----------
    graph:
        The colored graph; the index takes ownership of color edits done
        through :meth:`add_color` / :meth:`remove_color`.
    phi:
        A unary query in the guarded fragment (its locality radius must
        be certifiable — :class:`DecompositionError` otherwise).
    var:
        The free variable.

    Examples
    --------
    >>> from repro.graphs.generators import path
    >>> from repro.logic.parser import parse_formula
    >>> from repro.logic.syntax import Var
    >>> g = path(8, palette=())
    >>> index = DynamicUnaryIndex(g, parse_formula("exists y. E(x, y) & Hot(y)"), Var("x"))
    >>> index.solutions()
    []
    >>> index.add_color("Hot", 4)
    >>> index.solutions()
    [3, 5]
    """

    @pseudo_linear(note="one ball-local evaluation per vertex")
    def __init__(
        self,
        graph: ColoredGraph,
        phi: Formula,
        var: Var,
        eps: float = 0.5,
        layout: str | None = None,
    ) -> None:
        self.graph = graph
        self.var = var
        self.phi = normalize(phi)
        radius = locality_radius(self.phi, frozenset((var,)))
        if radius is None:
            raise DecompositionError(
                f"dynamic maintenance needs a certified locality radius: {phi!r}"
            )
        self.radius = radius
        # the store is the *only* copy of the solution set: a shadow set
        # could drift from it if a store edit raised mid-_refresh
        members = sorted(v for v in graph.vertices() if self._holds(v))
        self._store = StoredFunction(
            max(graph.n, 1),
            1,
            eps=eps,
            items=(((v,), True) for v in members),
            layout=layout,
        )

    # ------------------------------------------------------------------
    def _holds(self, v: int) -> bool:
        """Evaluate the query on the locality ball of ``v`` (fresh caches —
        the graph mutates between calls).  Ball-sized work: the ball is
        compactly relabeled so no O(n) structures are touched."""
        ball = bounded_bfs(self.graph, [v], self.radius)
        local, original = self.graph.relabeled_subgraph(ball)
        local_v = original.index(v)
        return evaluate(local, self.phi, {self.var: local_v}, DistanceCache(local))

    @builds
    def _refresh(self, center: int) -> None:
        """Re-evaluate every vertex whose ball may contain ``center``.

        Declared ``@builds``: the dynamic index *owns* its Storing
        structure, and the update path is a legitimate re-entry into the
        build phase (the store's own ``@builds`` item methods open the
        phase at runtime, so the freeze tripwire stays quiet).
        """
        for v in bounded_bfs(self.graph, [center], self.radius):
            now = self._holds(v)
            before = (v,) in self._store
            if now and not before:
                self._store[(v,)] = True
            elif before and not now:
                del self._store[(v,)]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    @delay("O(ball + n^eps)", note="repairs only N_rho(v) plus the store edit")
    def add_color(self, name: str, v: int) -> None:
        """Give ``v`` color ``name`` and repair the index (ball-sized work)."""
        self.graph.add_to_color(name, v)
        self._refresh(v)

    @delay("O(ball + n^eps)", note="repairs only N_rho(v) plus the store edit")
    def remove_color(self, name: str, v: int) -> None:
        """Remove color ``name`` from ``v`` and repair the index."""
        self.graph.discard_from_color(name, v)
        self._refresh(v)

    # ------------------------------------------------------------------
    # queries (constant time, as in the static index)
    # ------------------------------------------------------------------
    @constant_time(note="queries stay constant-time under updates")
    def test(self, v: int) -> bool:
        """Constant-time membership (Corollary 2.4's contract)."""
        return 0 <= v < self.graph.n and (v,) in self._store

    @constant_time(note="one stored-function successor query")
    def next_solution(self, lower: int) -> int | None:
        """Smallest solution >= lower, via the Storing structure."""
        if lower >= self.graph.n:
            return None
        found = self._store.successor((max(lower, 0),))
        return None if found is None else found[0]

    def solutions(self) -> list[int]:
        """The current solution set, sorted."""
        return [v for (v,) in self._store.keys()]

    def __len__(self) -> int:
        return len(self._store)
