"""Skip pointers (Lemma 5.8, after [30]).

Given a list ``L ⊆ V``, an ``r``-neighborhood cover ``X`` with kernels
``K_r(X)``, and an arity bound ``k``, we want constant-time queries::

    SKIP(b, S) = min { b' ∈ L : b' >= b  and  b' ∉ ∪_{X∈S} K_r(X) }

for any set ``S`` of at most ``k`` bags.  The full function has a huge
domain, so the preprocessing only materializes it on the inductively
defined family ``SC(b)`` (the proof's *small cases*):

* ``{X} ∈ SC(b)`` whenever ``b ∈ K_r(X)``;
* ``S ∪ {X} ∈ SC(b)`` whenever ``S ∈ SC(b)``, ``|S| < k`` and
  ``SKIP(b, S) ∈ K_r(X)``.

Claim 5.9 then resolves an arbitrary ``(b, S)`` in constantly many steps,
hopping through stored values of larger ``b``.  Pointers are computed for
``b`` from largest to smallest (Claim 5.10) and stored in a Theorem 3.1
:class:`StoredFunction` keyed by ``(b, bag_1, ..., bag_k)`` with a
sentinel padding value — so lookups meet the paper's constant-time bound.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.contracts import builds, constant_time, frozen_after_build, pseudo_linear, read_only
from repro.storage.function_store import StoredFunction
from repro.trace.runtime import span as _trace_span

#: Marker stored for "no such element" (must be distinct from any vertex).
_NULL = "null"


@frozen_after_build
class SkipPointers:
    """The Lemma 5.8 structure.

    Parameters
    ----------
    n:
        Vertex universe size (vertices are ``0..n-1``).
    targets:
        The list ``L`` (iterable of vertices).
    kernels:
        ``kernels[i]`` is the kernel vertex set ``K_r(X_i)`` of bag ``i``.
    k:
        Maximum number of bags per query (the query arity bound).
    eps:
        Storing-structure exponent.
    """

    @pseudo_linear(note="Claim 5.10: O(n^{1+k eps}) pointers materialized")
    def __init__(
        self,
        n: int,
        targets: Collection[int],
        kernels: Sequence[Collection[int]],
        k: int,
        eps: float = 0.5,
        layout: str | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.n = n
        self.k = k
        self.num_bags = len(kernels)
        self._kernel_sets = [set(K) for K in kernels]
        self._in_l = [False] * n
        for b in targets:
            self._in_l[b] = True
        # kernel_bags[v]: bag ids whose kernel contains v (cover-degree many)
        self._kernel_bags: list[list[int]] = [[] for _ in range(n)]
        for bag_id, K in enumerate(self._kernel_sets):
            for v in K:
                self._kernel_bags[v].append(bag_id)
        # next_l[b]: smallest element of L that is >= b (None past the end)
        self._next_l: list[int | None] = [None] * (n + 1)
        nxt: int | None = None
        for b in range(n - 1, -1, -1):
            if self._in_l[b]:
                nxt = b
            self._next_l[b] = nxt
        # the stored pointers: key (b, sorted bag ids padded with sentinel)
        self._sentinel = self.num_bags  # one past the largest bag id
        universe = max(n, self._sentinel + 1)
        self._store = StoredFunction(universe, k + 1, eps=eps, layout=layout)
        with _trace_span("skip_pointers.build", n=n, bags=self.num_bags):
            self._precompute()

    # ------------------------------------------------------------------
    # preprocessing (Claim 5.10): b from largest to smallest
    # ------------------------------------------------------------------
    @constant_time(note="sorts at most k bag ids, k fixed")
    @read_only
    def _key(self, b: int, bags: frozenset[int]) -> tuple[int, ...]:
        padded = sorted(bags) + [self._sentinel] * (self.k - len(bags))
        return (b, *padded)

    @pseudo_linear(note="Claim 5.10 sweep, b from largest to smallest")
    @builds
    def _precompute(self) -> None:
        for b in range(self.n - 1, -1, -1):
            # seed SC(b) with singletons, then close under the SKIP rule
            queue = [frozenset((x,)) for x in self._kernel_bags[b]]
            seen = set(queue)
            while queue:
                bag_set = queue.pop()
                value = self._resolve(b, bag_set)
                self._store[self._key(b, bag_set)] = _NULL if value is None else value
                if value is not None and len(bag_set) < self.k:
                    for x in self._kernel_bags[value]:
                        extended = bag_set | {x}
                        if extended not in seen and len(extended) <= self.k:
                            seen.add(extended)
                            queue.append(extended)

    # ------------------------------------------------------------------
    # Claim 5.9 resolution
    # ------------------------------------------------------------------
    @constant_time(note="at most k kernel membership probes")
    @read_only
    def _in_some_kernel(self, v: int, bags: frozenset[int]) -> bool:
        return any(v in self._kernel_sets[x] for x in bags)

    @constant_time(note="Claim 5.9: constantly many hops")
    @read_only
    def _resolve(self, b: int, bags: frozenset[int]) -> int | None:
        """Compute SKIP(b, bags) using stored pointers of vertices > b."""
        # Case 1: b itself qualifies.
        if self._in_l[b] and not self._in_some_kernel(b, bags):
            return b
        # Case 2: hop to the next L element.
        c = self._next_l[b + 1] if b + 1 <= self.n else None
        if c is None:
            return None
        if not self._in_some_kernel(c, bags):
            return c
        # c sits in some kernel of `bags`; grow a maximal stored subset at c.
        subset = self._maximal_stored_subset(c, bags)
        stored = self._store.get(self._key(c, subset))
        if stored is None:
            raise AssertionError(
                f"missing stored pointer for ({c}, {sorted(subset)})"
            )  # pragma: no cover - would indicate a preprocessing bug
        return None if stored == _NULL else stored

    @constant_time(note="at most k growth steps, k fixed")
    @read_only
    def _maximal_stored_subset(self, c: int, bags: frozenset[int]) -> frozenset[int]:
        """Greedily grow ``S' ⊆ bags`` with ``S' ∈ SC(c)`` until maximal,
        following exactly the Claim 5.9 argument."""
        start = next(x for x in bags if c in self._kernel_sets[x])
        subset = frozenset((start,))
        while len(subset) < len(bags):
            stored = self._store.get(self._key(c, subset))
            value = None if stored == _NULL else stored
            if value is None:
                break
            extension = next(
                (x for x in bags - subset if value in self._kernel_sets[x]), None
            )
            if extension is None:
                break
            subset = subset | {extension}
        return subset

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @constant_time(note="Lemma 5.8 SKIP query")
    @read_only
    def skip(self, b: int, bags: Collection[int]) -> int | None:
        """``SKIP(b, bags)`` in constant time; ``bags`` has at most ``k`` ids."""
        bag_set = frozenset(bags)
        if len(bag_set) > self.k:
            raise ValueError(f"at most {self.k} bags per query, got {len(bag_set)}")
        if not 0 <= b < self.n:
            raise ValueError(f"vertex {b} out of range [0, {self.n})")
        return self._resolve(b, bag_set)

    @property
    @read_only
    def stored_pointers(self) -> int:
        """Number of materialized (b, S) pairs — Claim 5.10's O(n^{1+k eps})."""
        return len(self._store)
