"""Memoized bag-local evaluation.

Inside a bag (a small induced subgraph), the engine needs to (a) test
local formulas on given tuples and (b) find the smallest last coordinate
satisfying a local formula for a fixed prefix.  Bags are pseudo-constant
sized on sparse inputs, so a memoized naive evaluator meets the paper's
"naive algorithm for small graphs" role (Step 1 of every preprocessing
phase).

Two layers of memoization keep repeated answering-phase queries cheap:

* a :class:`~repro.logic.semantics.DistanceCache` shares the BFS behind
  every distance atom across all evaluations on the bag;
* conjunction columns are *split*: the subformula mentioning only the
  searched variable is materialized once per bag (prefix-independent),
  and the per-prefix residue — typically the ``ρ_tau`` distance
  constraints of the bag query Ψ — is filtered per candidate via the
  cached balls.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.contracts import frozen_after_build, read_only
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.semantics import DistanceCache, evaluate
from repro.logic.syntax import And, Formula, Top, Var, conjunction
from repro.logic.transform import free_variables


@frozen_after_build(cells={"_test_cache": "_memo_lock", "_column_cache": "_memo_lock", "_unary_cache": "_memo_lock", "_free_cache": "_memo_lock"})
class LocalEvaluator:
    """Naive-but-memoized FO+ evaluation on one (small) graph."""

    __slots__ = ("graph", "_dist", "_test_cache", "_column_cache", "_unary_cache", "_free_cache")

    #: Store lock for the memo cells; a class attribute so it coexists
    #: with ``__slots__`` and never lands in a pickle.
    _memo_lock = threading.Lock()

    def __init__(self, graph: ColoredGraph) -> None:
        self.graph = graph
        self._dist = DistanceCache(graph)
        self._test_cache: dict[tuple, bool] = {}
        self._column_cache: dict[tuple, list[int]] = {}
        self._unary_cache: dict[tuple, list[int]] = {}
        self._free_cache: dict[Formula, frozenset[Var]] = {}

    @read_only
    def _free(self, phi: Formula) -> frozenset[Var]:
        cached = self._free_cache.get(phi)
        if cached is None:
            with self._memo_lock:
                cached = self._free_cache.setdefault(phi, free_variables(phi))
        return cached

    @read_only
    def test(self, phi: Formula, free_order: tuple[Var, ...], values: tuple[int, ...]) -> bool:
        """``graph |= phi(values)`` with memoization."""
        key = (phi, free_order, values)
        cached = self._test_cache.get(key)
        if cached is None:
            fresh = evaluate(self.graph, phi, dict(zip(free_order, values)), self._dist)
            with self._memo_lock:
                cached = self._test_cache.setdefault(key, fresh)
        return cached

    @read_only
    def unary_column(self, phi: Formula, var: Var) -> list[int]:
        """All ``b`` with ``graph |= phi(b)`` — cached per formula.

        This is the prefix-independent part of bag queries; computing it
        once per bag is what makes repeated answering-phase searches
        constant time.
        """
        key = (phi, var)
        cached = self._unary_cache.get(key)
        if cached is None:
            if isinstance(phi, Top):
                fresh = list(self.graph.vertices())
            else:
                assignment: dict[Var, int] = {}
                fresh = []
                for b in self.graph.vertices():
                    assignment[var] = b
                    if evaluate(self.graph, phi, assignment, self._dist):
                        fresh.append(b)
            with self._memo_lock:
                cached = self._unary_cache.setdefault(key, fresh)
        return cached

    @read_only
    def column(
        self,
        phi: Formula,
        prefix_order: tuple[Var, ...],
        prefix_values: tuple[int, ...],
        last_var: Var,
    ) -> list[int]:
        """All ``b`` with ``graph |= phi(prefix_values, b)``, sorted.

        Conjunctions are split into a cached unary core and a per-prefix
        residue; other shapes fall back to a full scan (still memoized
        per prefix).
        """
        key = (phi, prefix_order, prefix_values, last_var)
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached
        parts = phi.parts if isinstance(phi, And) else (phi,)
        unary_parts = [p for p in parts if self._free(p) <= {last_var}]
        residue = [p for p in parts if not (self._free(p) <= {last_var})]
        base = self.unary_column(conjunction(unary_parts), last_var)
        if residue:
            assignment = dict(zip(prefix_order, prefix_values))
            out = []
            for b in base:
                assignment[last_var] = b
                if all(evaluate(self.graph, p, assignment, self._dist) for p in residue):
                    out.append(b)
        else:
            out = list(base)
        with self._memo_lock:
            out = self._column_cache.setdefault(key, out)
        return out

    @read_only
    def first_at_least(
        self,
        phi: Formula,
        prefix_order: tuple[Var, ...],
        prefix_values: tuple[int, ...],
        last_var: Var,
        lower: int,
    ) -> int | None:
        """Smallest ``b >= lower`` with ``graph |= phi(prefix_values, b)``."""
        col = self.column(phi, prefix_order, prefix_values, last_var)
        index = bisect_left(col, lower)
        return col[index] if index < len(col) else None
