"""Incremental index repair under edge updates (the Section 6 open problem).

The paper's conclusion asks for index structures that survive *updates*;
:mod:`repro.core.dynamic` answered the color-update slice.  This module
takes the next step — **edge** inserts and deletes — by repairing the
whole Theorem 5.1 tower ball-locally instead of rebuilding it:

* updates are **persistent**: :func:`repaired_impl` returns a *new*
  implementation tower sharing every untouched register with the old
  one, and the old tower is never mutated.  Concurrent readers keep
  answering against their generation; the engine swaps generations
  atomically (see :meth:`repro.core.engine.QueryIndex.insert_edge`);
* damage is localized by the same Removal-Lemma argument the dynamic
  index uses: an edge on ``{u, v}`` can only change the ``r``-ball of
  vertices in ``N_r({u, v})`` (measured in the old *and* new graph), so
  only cover bags, kernels, distance entries and bag solvers whose
  neighborhoods intersect that ball are recomputed;
* the arity-1 register file is repaired as a delta **overlay**
  (:class:`PatchedUnaryIndex`) over the frozen Theorem 3.1 store, so the
  per-update cost is ball-sized plus the delta bookkeeping — sublinear
  in ``n`` (benchmark E17's gate) — with an automatic collapse to a
  fresh store once the delta stops being small;
* the Proposition 4.2 distance oracle is repaired the same way
  (:class:`PatchedDistanceIndex`): exact ``r``-balls for the touched
  vertices shadow the frozen recursive structure;
* for arity >= 2, the ``(kr, 2kr)``-cover keeps its bag *identity*
  (``assignment``, centers, and the Lemma 5.8 bag-id universe are
  stable) and bag membership grows monotonically: an inserted edge makes
  every touched vertex's canonical bag absorb its grown ball, a deleted
  edge leaves bags as sound supersets, so the Definition 4.3 invariant
  ``N_radius(a) ⊆ X(a)`` survives arbitrary update chains and
  kernels/solvers are recomputed for damaged bags only.  The Case-I
  target lists and skip pointers are then patched per cached local
  formula.  The k = 2 prefix register is re-derived by ``n`` O(1)
  probes of the repaired Lemma 5.2 oracle — exactly how it was first
  built, so repaired and rebuilt indexes are register-level equal
  (:func:`register_dump` is the differential oracle's view).

Escalations (documented, still correct): arity-0 sentences are
re-model-checked; unary queries without a certified locality radius are
re-solved from scratch; a :class:`~repro.baselines.naive.NaiveIndex`
is rebuilt on the new graph.

**Freeze-tripwire contract.**  Repair re-enters the build phase: every
function below that fills a frozen structure is ``@builds`` (the static
CCY103 exemption) and :func:`repaired_impl` opens an explicit
:func:`~repro.contracts.build_phase` so the runtime tripwire of
``repro serve --paranoid`` stays quiet while new generations are
assembled — readers of the *old* generation never see a write.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.baselines.naive import NaiveIndex
from repro.contracts import (
    amortized,
    build_phase,
    builds,
    constant_time,
    frozen_after_build,
    pseudo_linear,
    read_only,
)
from repro.core.last_coordinate import LastCoordinateIndex
from repro.core.next_solution import NextSolutionIndex, PrefixScan, RelaxedPrefixIndex
from repro.core.normal_form import locality_radius, normalize
from repro.core.skip_pointers import SkipPointers
from repro.core.unary import UnaryIndex, model_check, unary_solutions
from repro.covers.kernels import kernel_of_bag
from repro.covers.neighborhood_cover import NeighborhoodCover
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.logic.semantics import DistanceCache, evaluate
from repro.logic.syntax import Exists, Top
from repro.trace.runtime import span as _trace_span

#: Delta size beyond which a :class:`PatchedUnaryIndex` collapses into a
#: fresh Theorem 3.1 store (amortizes the O(n) rebuild over many small
#: updates; ``max(…, sqrt(n))`` keeps the collapse itself sublinear on
#: average for ball-sized deltas).
_COLLAPSE_FLOOR = 16


@frozen_after_build
class PatchedDistanceIndex:
    """A Proposition 4.2 oracle repaired by an exact-ball overlay.

    ``overlay[a]`` is the exact ``radius``-ball of ``a`` (vertex ->
    distance) on the *current* graph, recorded for every vertex whose
    ball an update changed.  Queries consult the overlay first — either
    endpoint having an entry fully determines the answer — and fall back
    to the frozen base oracle, which is still correct for vertices whose
    balls never changed.  Chained repairs flatten onto the original
    base, so lookup depth stays one.
    """

    def __init__(
        self,
        base: object,
        graph: ColoredGraph,
        overlay: dict[int, dict[int, int]],
        radius: int,
    ) -> None:
        if isinstance(base, PatchedDistanceIndex):
            merged = dict(base._overlay)
            merged.update(overlay)
            overlay = merged
            base = base._base
        self._base = base
        self._overlay = overlay
        self.graph = graph
        self.radius = radius

    @constant_time(note="two dict probes, then the frozen base oracle")
    @read_only
    def test(self, a: int, b: int) -> bool:
        """Is ``dist(a, b) <= radius``?  Constant time."""
        if a == b:
            return True
        ball = self._overlay.get(a)
        if ball is not None:
            return b in ball
        ball = self._overlay.get(b)
        if ball is not None:
            return a in ball
        return self._base.test(a, b)

    @constant_time(note="two dict probes, then the frozen base oracle")
    @read_only
    def distance(self, a: int, b: int) -> int | None:
        """The exact distance when ``<= radius``, else None."""
        if a == b:
            return 0
        ball = self._overlay.get(a)
        if ball is not None:
            found = ball.get(b)
            return found if found is not None and found <= self.radius else None
        ball = self._overlay.get(b)
        if ball is not None:
            found = ball.get(a)
            return found if found is not None and found <= self.radius else None
        return self._base.distance(a, b)

    @read_only
    def __repr__(self) -> str:
        return (
            f"PatchedDistanceIndex(r={self.radius}, "
            f"overlay={len(self._overlay)}, base={self._base!r})"
        )


@frozen_after_build(cells={"_solutions_cache": "_memo_lock"})
class PatchedUnaryIndex:
    """A Theorem 5.1 (k = 1) register file repaired by a delta overlay.

    The frozen base :class:`~repro.core.unary.UnaryIndex` keeps serving
    the untouched registers; ``added`` / ``removed`` (both ball-sized)
    shadow it.  ``test`` is two set probes plus one store probe;
    ``next_solution`` merges the base successor (skipping removed
    entries — at most ``|removed|`` hops) with a bisect into the sorted
    additions.  Chained repairs flatten onto the original base; once the
    delta outgrows ``max(sqrt(n), 16)``, :func:`_patch_unary` collapses
    the overlay into a fresh store instead.
    """

    #: Store lock for the lazily-merged solution list (kept class-level
    #: so patched indexes stay picklable, like the other memo owners).
    _memo_lock = threading.Lock()

    def __init__(
        self,
        base: UnaryIndex,
        graph: ColoredGraph,
        added: set[int],
        removed: set[int],
    ) -> None:
        self._base = base
        self.graph = graph
        self.var = base.var
        self._added = frozenset(added)
        self._removed = frozenset(removed)
        self._added_sorted = sorted(added)
        self._solutions_cache: list[int] | None = None

    @constant_time(note="two set probes + one frozen store probe")
    @read_only
    def test(self, v: int) -> bool:
        """Constant-time membership, overlay first."""
        if v in self._added:
            return True
        if v in self._removed:
            return False
        return self._base.test(v)

    @amortized("O(1)", note="base successor + |removed| skips, ball-bounded")
    @read_only
    def next_solution(self, lower: int) -> int | None:
        """Smallest solution ``>= lower`` across base-minus-removed and added."""
        if lower >= self.graph.n:
            return None
        lower = max(lower, 0)
        at = bisect_left(self._added_sorted, lower)
        from_added = self._added_sorted[at] if at < len(self._added_sorted) else None
        found = self._base.next_solution(lower)
        while found is not None and found in self._removed:
            found = self._base.next_solution(found + 1)
        if found is None:
            return from_added
        if from_added is None:
            return found
        return min(found, from_added)

    @property
    @read_only
    def solutions(self) -> list[int]:
        """The effective solution list (merged lazily, then memoized)."""
        cached = self._solutions_cache
        if cached is None:
            merged = sorted(
                (set(self._base.solutions) - self._removed) | self._added
            )
            with self._memo_lock:
                if self._solutions_cache is None:
                    self._solutions_cache = merged
                cached = self._solutions_cache
        return cached

    @read_only
    def __len__(self) -> int:
        return len(self._base) + len(self._added) - len(self._removed)


# ----------------------------------------------------------------------
# damage localization helpers
# ----------------------------------------------------------------------
def _touched_ball(
    old_graph: ColoredGraph, new_graph: ColoredGraph, u: int, v: int, radius: int
) -> set[int]:
    """Vertices whose ``radius``-ball the update may have changed.

    The Removal-Lemma localization: a path gained or lost by toggling
    edge ``{u, v}`` passes through ``u`` and ``v``, so only vertices
    within ``radius`` of the edge — in the old *or* the new graph —
    can see a different ball.
    """
    touched = set(bounded_bfs(old_graph, [u, v], radius))
    touched.update(bounded_bfs(new_graph, [u, v], radius))
    return touched


def _holds_on_ball(
    graph: ColoredGraph, psi, var, vertex: int, radius: int
) -> bool:
    """Evaluate the normalized unary query on the locality ball of
    ``vertex`` (the ``DynamicUnaryIndex._holds`` pattern: ball-sized)."""
    ball = bounded_bfs(graph, [vertex], radius)
    local, original = graph.relabeled_subgraph(ball)
    local_v = original.index(vertex)
    return evaluate(local, psi, {var: local_v}, DistanceCache(local))


# ----------------------------------------------------------------------
# per-layer repairs
# ----------------------------------------------------------------------
@pseudo_linear(note="ball-local re-evaluation; O(n) only on escalation/collapse")
@builds
def _patch_unary(
    old_unary: object,
    old_graph: ColoredGraph,
    new_graph: ColoredGraph,
    phi,
    var,
    u: int,
    v: int,
    eps: float,
    layout: str | None,
) -> object:
    """Repair the arity-1 level: overlay when local, recompute when not."""
    psi = normalize(phi)
    radius = locality_radius(psi, frozenset((var,)))
    if radius is None:
        # escalation: no certified locality radius — re-solve from scratch
        fresh = unary_solutions(new_graph, phi, var, eps=eps, layout=layout)
        return UnaryIndex(
            new_graph, phi, var, eps=eps, solutions=fresh, layout=layout
        )
    touched = _touched_ball(old_graph, new_graph, u, v, radius)
    if isinstance(old_unary, PatchedUnaryIndex):
        base = old_unary._base
        added = set(old_unary._added)
        removed = set(old_unary._removed)
    else:
        base = old_unary
        added, removed = set(), set()
    for a in touched:
        in_base = base.test(a)
        if _holds_on_ball(new_graph, psi, var, a, radius):
            removed.discard(a)
            if not in_base:
                added.add(a)
        else:
            added.discard(a)
            if in_base:
                removed.add(a)
    if len(added) + len(removed) > max(_COLLAPSE_FLOOR, int(new_graph.n**0.5)):
        # collapse: fold the (no longer small) delta into a fresh store
        merged = sorted((set(base.solutions) - removed) | added)
        return UnaryIndex(
            new_graph, phi, var, eps=eps, solutions=merged, layout=layout
        )
    return PatchedUnaryIndex(base, new_graph, added, removed)


@builds
def _patched_cover(
    old: NeighborhoodCover,
    new_graph: ColoredGraph,
    damaged_members: dict[int, list[int]],
) -> NeighborhoodCover:
    """A structurally shared cover with the damaged bags' members swapped.

    Bag *identity* is preserved: ``assignment``, ``centers`` and the
    per-bag ``assigned`` lists are shared with the old cover.  Membership
    is **monotone** across repairs — ``damaged_members`` only ever grows
    a bag (inserts absorb grown balls, deletes keep bags as sound
    supersets) — so every vertex stays a member of its canonical bag and
    the Definition 4.3 invariant ``N_radius(a) ⊆ X(a)`` holds on the
    current graph after any update chain.  The lazy ordered-membership
    store is reset and rebuilt on demand.
    """
    cover = object.__new__(NeighborhoodCover)
    cover.graph = new_graph
    cover.radius = old.radius
    cover.bag_radius = old.bag_radius
    bags = list(old.bags)
    member_sets = list(old._member_sets)
    for bag_id, members in damaged_members.items():
        bags[bag_id] = members
        member_sets[bag_id] = set(members)
    cover.bags = bags
    cover.centers = old.centers
    cover.assignment = old.assignment
    cover.eps = old.eps
    cover.layout = old.layout
    cover.assigned = old.assigned
    cover._member_sets = member_sets
    cover._membership_store = None
    return cover


@builds
def _repair_far(
    index: LastCoordinateIndex,
    psi,
    old_targets: list[int],
    damaged: set[int],
) -> tuple[list[int], SkipPointers]:
    """Patch one Case-I structure: swap the damaged bags' contributions.

    The Step-12 target list is a disjoint union of per-canonical-bag
    columns, so only the damaged bags' slices change; the Lemma 5.8
    pointers are then rebuilt over the stable bag-id universe (no bag is
    ever created or destroyed by a repair, so ``SkipPointers`` keys and
    sentinel stay comparable with a from-scratch rebuild).
    """
    if isinstance(psi, Top):
        targets = list(index.graph.vertices())
    else:
        drop: set[int] = set()
        for bag_id in damaged:
            drop.update(index.cover.assigned[bag_id])
        kept = [t for t in old_targets if t not in drop]
        fresh: list[int] = []
        last_var = index.free_order[-1]
        for bag_id in sorted(damaged):
            assigned = index.cover.assigned[bag_id]
            if not assigned:
                continue
            solver, to_new, _ = index._solver(bag_id)
            members = set(solver.column(psi, (), (), last_var))
            fresh.extend(t for t in assigned if to_new[t] in members)
        targets = sorted(kept + fresh)
    skips = SkipPointers(
        index.graph.n,
        targets,
        index.kernels,
        k=max(index.k - 1, 1),
        eps=index.config.eps,
        layout=index.config.layout,
    )
    return (targets, skips)


@pseudo_linear(note="ball-local bag surgery; skip pointers rebuilt per psi")
@builds
def _repair_last(
    old_graph: ColoredGraph,
    new_graph: ColoredGraph,
    old: LastCoordinateIndex,
    u: int,
    v: int,
    inserted: bool,
) -> LastCoordinateIndex:
    """Repair one Lemma 5.2 level onto the new graph (old level untouched)."""
    new = object.__new__(LastCoordinateIndex)
    new.graph = new_graph
    new.phi = old.phi
    new.free_order = old.free_order
    new.k = old.k
    new.config = old.config
    new.decomp = old.decomp  # pure syntax: graph-independent
    new.r = old.r

    # Step 2 repair: exact balls for every vertex the update touched
    touched = _touched_ball(old_graph, new_graph, u, v, old.r)
    overlay = {a: bounded_bfs(new_graph, [a], old.r) for a in touched}
    new.dist = PatchedDistanceIndex(old.dist, new_graph, overlay, old.r)

    # Step 3 repair: the cover invariant — N_radius(a) inside a's
    # canonical bag, for every a — must survive the update.  Deletions
    # only shrink balls, so unchanged bags stay sound supersets.
    # Insertions grow balls, so every vertex whose cover-radius ball the
    # edge touched gets its canonical bag *absorbed up* to the grown
    # ball.  Bags are monotone (they only ever gain members): that keeps
    # every assigned vertex a member of its own bag across arbitrary
    # update chains, which is what keeps carried-over solver relabelings
    # total and the Case-I/Case-II locality arguments sound.
    damaged_members: dict[int, list[int]] = {}
    if inserted:
        rc = old.cover.radius
        grown: dict[int, set[int]] = {}
        for t in _touched_ball(old_graph, new_graph, u, v, rc):
            bag_id = old.cover.assignment[t]
            members = old.cover._member_sets[bag_id]
            extra = [
                b for b in bounded_bfs(new_graph, [t], rc) if b not in members
            ]
            if extra:
                grown.setdefault(bag_id, set()).update(extra)
        for bag_id, extra in grown.items():
            damaged_members[bag_id] = sorted(extra.union(old.cover.bags[bag_id]))
    new.cover = _patched_cover(old.cover, new_graph, damaged_members)

    # a bag is damaged when its membership changed or any member's r-ball
    # did; stale superset members can sit arbitrarily far from their
    # bag's center after earlier deletes, so membership itself — not
    # center distance — is the damage test (one ball-sized disjointness
    # probe per bag, the same per-bag scan the cover build already does)
    damaged = set(damaged_members)
    for bag_id, members in enumerate(new.cover._member_sets):
        if bag_id not in damaged and not members.isdisjoint(touched):
            damaged.add(bag_id)

    kernels = list(old.kernels)
    for bag_id in damaged:
        kernels[bag_id] = kernel_of_bag(new_graph, new.cover.bags[bag_id], old.r)
    new.kernels = kernels

    # solvers of undamaged bags see an unchanged induced subgraph + kernel
    # color, so their memoized columns carry over register-identically
    new._solvers = {
        bag_id: entry
        for bag_id, entry in old._solvers.items()
        if bag_id not in damaged
    }
    new._sentence_cache = {}  # sentences must be re-checked on the new graph
    new._bag_query_cache = dict(old._bag_query_cache)  # pure syntax
    new._far_structures_cache = {}
    if damaged:
        for psi, (targets, _) in old._far_structures_cache.items():
            new._far_structures_cache[psi] = _repair_far(new, psi, targets, damaged)
    else:
        # no bag was touched: target lists and kernels are unchanged, so
        # the Lemma 5.8 structures can be shared as-is
        new._far_structures_cache = dict(old._far_structures_cache)
    return new


@pseudo_linear(note="per-level repair; k=2 prefix re-derived by n O(1) probes")
@builds
def _repair_next(
    old_graph: ColoredGraph,
    new_graph: ColoredGraph,
    node: NextSolutionIndex,
    u: int,
    v: int,
    inserted: bool,
) -> NextSolutionIndex:
    """Repair one Theorem 5.1 level (and, recursively, its prefix tower)."""
    config = node.config
    new = object.__new__(NextSolutionIndex)
    new.graph = new_graph
    new.phi = node.phi
    new.free_order = node.free_order
    new.k = node.k
    new.config = config
    new._holds = None
    new._unary = None
    new.last = None
    if node.k == 0:
        # escalation: sentences are re-model-checked (pseudo-linear)
        new._holds = model_check(new_graph, node.phi, eps=config.eps)
        return new
    if node.k == 1:
        new._unary = _patch_unary(
            node._unary,
            old_graph,
            new_graph,
            node.phi,
            node.free_order[0],
            u,
            v,
            config.eps,
            config.layout,
        )
        return new
    new.last = _repair_last(old_graph, new_graph, node.last, u, v, inserted)
    if node.k == 2:
        # exactly how the register was first derived: n O(1) oracle probes
        solutions = [
            a
            for a in new_graph.vertices()
            if new.last.first_last((a,), 0) is not None
        ]
        new._prefix = UnaryIndex(
            new_graph,
            Exists(new.free_order[-1], new.phi),
            new.free_order[0],
            eps=config.eps,
            solutions=solutions,
            layout=config.layout,
        )
        return new
    prefix = node._prefix
    if isinstance(prefix, NextSolutionIndex):
        new._prefix = _repair_next(old_graph, new_graph, prefix, u, v, inserted)
    elif isinstance(prefix, RelaxedPrefixIndex):
        relaxed = object.__new__(RelaxedPrefixIndex)
        relaxed._oracle = new.last
        relaxed._n = new_graph.n
        relaxed._inner = _repair_next(
            old_graph, new_graph, prefix._inner, u, v, inserted
        )
        new._prefix = relaxed
    else:
        new._prefix = PrefixScan(new.last, new_graph.n, node.k - 1)
    return new


# ----------------------------------------------------------------------
# entry point + differential oracle
# ----------------------------------------------------------------------
@pseudo_linear(note="ball-local repair; documented escalations are linear")
@builds
def repaired_impl(
    old_graph: ColoredGraph,
    new_graph: ColoredGraph,
    impl: object,
    u: int,
    v: int,
    inserted: bool,
) -> object:
    """A new implementation tower for ``new_graph``; ``impl`` is untouched.

    The explicit :func:`build_phase` makes the repair a legitimate
    re-entry into the build phase under the runtime freeze tripwire:
    every structure assembled here is a *new* generation — old-generation
    readers race against nothing.
    """
    with build_phase(), _trace_span(
        "repair.apply", inserted=inserted, u=u, v=v
    ):
        if isinstance(impl, NaiveIndex):
            # escalation: the baseline has no locality to exploit
            return NaiveIndex(new_graph, impl.phi, impl.free_order)
        if isinstance(impl, NextSolutionIndex):
            return _repair_next(old_graph, new_graph, impl, u, v, inserted)
        raise TypeError(
            f"cannot repair index implementation {type(impl).__name__}"
        )


def register_dump(index: object) -> dict:
    """The semantically-determined registers, for differential testing.

    Two indexes over the same (graph, query, order, config) must agree on
    this dump whether they were built from scratch or repaired through
    any update sequence: the unary solution registers per level, the
    k = 2 prefix register, and the Case-I target lists (forced for every
    singleton-last local formula, so lazy population cannot hide a
    diff).  Cover *geometry* (which centers won, bag shapes) is
    deliberately excluded — it is an implementation degree of freedom
    the Storing-Theorem registers are defined over, not one of them.
    """
    impl = getattr(index, "_impl", index)
    out: dict = {}
    if isinstance(impl, NaiveIndex):
        out["naive_solutions"] = [list(t) for t in impl.solutions]
        return out
    levels = []
    node = impl
    while isinstance(node, NextSolutionIndex):
        level: dict = {"k": node.k}
        if node.k == 0:
            level["holds"] = bool(node._holds)
            levels.append(level)
            break
        if node.k == 1:
            level["unary"] = list(node._unary.solutions)
            levels.append(level)
            break
        last = node.last
        level["radius"] = last.r
        last_pos = last.k - 1
        far: dict[str, list[int]] = {}
        for tau, alternatives in last.decomp.per_type.items():
            if tau.component_of(last_pos) != frozenset((last_pos,)):
                continue
            for alt in alternatives:
                psi = alt.local_for(frozenset((last_pos,)))
                targets, _ = last._far_structures(psi)
                far[repr(psi)] = list(targets)
        level["far_targets"] = dict(sorted(far.items()))
        prefix = node._prefix
        if node.k == 2:
            level["prefix"] = list(prefix.solutions)
            levels.append(level)
            break
        levels.append(level)
        if isinstance(prefix, NextSolutionIndex):
            node = prefix
        elif isinstance(prefix, RelaxedPrefixIndex):
            node = prefix._inner
        else:  # PrefixScan carries no registers of its own
            break
    out["levels"] = levels
    return out
