"""Tuning knobs for the enumeration engine.

The paper's constants (tower-of-exponentials functions of the query) are
replaced by explicit engineering knobs.  Every knob that substitutes for
a theoretical constant says which one (see DESIGN.md's substitution
table).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineConfig:
    """Configuration shared by all index layers.

    Attributes
    ----------
    eps:
        The pseudo-linear exponent: cover membership, Storing-Theorem
        tries and skip pointers all use it.
    dist_naive_threshold / dist_max_depth:
        The distance index's Step-1 cutoff and splitter-recursion cap
        (stand-in for λ(2r) of Theorem 4.6).
    bag_naive_threshold / bag_max_depth:
        Same two knobs for the per-bag solvers (Steps 8-11).
    precompute_far:
        Build the Case-I structures (unary lists L, skip pointers) during
        preprocessing (paper Steps 12-13) rather than lazily on first use.
    workers:
        Thread count for the independent per-bag preprocessing work
        (cover-ball BFS fan-out, kernel computation, bag-solver builds).
        ``1`` (the default) keeps the sequential path, which doubles as
        the oracle in parallel-equivalence tests.  Build-strategy only:
        the constructed index is identical for every value, so snapshot
        fingerprints deliberately exclude it.
    layout:
        Register layout for every Storing-Theorem trie in the index:
        ``"object"`` (the original list-of-pairs structures, kept as
        the differential-testing oracle), ``"arena"`` (flat typed
        arrays with an interned-payload side table — same answers in
        the same order, roughly half the per-lookup cost and far
        smaller snapshots), or ``"auto"`` (the default) to follow
        ``REPRO_STORAGE_LAYOUT`` and fall back to ``"object"``.
        Representation-only: both layouts are register-level identical
        under the differential suite, so snapshot fingerprints exclude
        it like ``workers``.
    """

    eps: float = 0.5
    dist_naive_threshold: int = 64
    dist_max_depth: int = 3
    bag_naive_threshold: int = 220
    bag_max_depth: int = 12
    precompute_far: bool = True
    workers: int = 1
    layout: str = "auto"


DEFAULT_CONFIG = EngineConfig()
