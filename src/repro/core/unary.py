"""Unary queries and sentences (Theorem 5.3's role in the pipeline).

The paper invokes Grohe–Kreutzer–Siebertz's model-checking theorem for
arities 0 and 1.  Our stand-in:

* **unary queries** — decompose (k=1 has a single trivial distance type),
  evaluate the local part of each alternative inside each vertex's
  canonical bag, and conjoin the global sentence.  One bag-local test per
  vertex = pseudo-linear on sparse inputs.  Falls back to a naive scan if
  the query does not decompose.
* **sentences** — peel leading quantifiers into unary sub-queries
  (``∃x ψ`` holds iff the unary index of ``ψ`` is non-empty), recurse
  through Boolean structure, and fall back to naive evaluation otherwise.

Results are stored in a Theorem 3.1 :class:`StoredFunction`, so successor
queries over the solution set are constant time — which is exactly what
the arity-1 case of Theorem 5.1 needs.
"""

from __future__ import annotations

from repro.contracts import constant_time, frozen_after_build, pseudo_linear, read_only
from repro.core.bag_solver import BagSolver
from repro.core.normal_form import DecompositionError, decompose
from repro.covers.neighborhood_cover import build_cover
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.semantics import evaluate
from repro.logic.syntax import And, Exists, Forall, Formula, Not, Or, Var
from repro.logic.transform import free_variables
from repro.storage.function_store import StoredFunction


@pseudo_linear(note="one bag-local column per (bag, alternative)")
def unary_solutions(
    graph: ColoredGraph,
    phi: Formula,
    var: Var,
    eps: float = 0.5,
    bag_threshold: int | None = None,
    on_error: str = "naive",
    layout: str | None = None,
) -> list[int]:
    """All vertices satisfying the unary query ``phi(var)``, sorted.

    Pseudo-linear when ``phi`` decomposes (bag-local evaluation per
    vertex).  Outside the fragment: with ``on_error="naive"`` (default)
    fall back to a quadratic-ish scan, with ``on_error="raise"`` propagate
    the :class:`DecompositionError` so callers can choose their fallback.
    """
    if graph.n == 0:
        return []
    try:
        decomposition = decompose(phi, (var,))
    except DecompositionError:
        if on_error == "raise":
            raise
        return [
            v for v in graph.vertices() if evaluate(graph, phi, {var: v})
        ]
    [tau] = list(decomposition.per_type)
    alternatives = decomposition.per_type[tau]
    if not alternatives:
        return []
    r = decomposition.radius
    cover = build_cover(graph, r, eps=eps, layout=layout)
    solvers: dict[int, BagSolver] = {}
    bag_maps: dict[int, tuple] = {}
    component = frozenset((0,))
    # evaluate each alternative's sentence once, globally
    live = [
        alt
        for alt in alternatives
        if model_check(graph, alt.sentence, eps=eps)
    ]
    if not live:
        return []
    out = []
    kwargs = {} if bag_threshold is None else {"naive_threshold": bag_threshold}
    for bag_id, assigned in enumerate(cover.assigned):
        if not assigned:
            continue
        solver = solvers.get(bag_id)
        if solver is None:
            sub, original = graph.relabeled_subgraph(cover.bags[bag_id])
            solver = BagSolver(sub, max_bound=r, **kwargs)
            solvers[bag_id] = solver
            bag_maps[bag_id] = {orig: i for i, orig in enumerate(original)}
        # one column per (bag, alternative), not one evaluation per vertex
        satisfied: set[int] = set()
        for alt in live:
            psi = alt.local_for(component)
            satisfied.update(solver.column(psi, (), (), var))
        to_new = bag_maps[bag_id]
        out.extend(v for v in assigned if to_new[v] in satisfied)
    out.sort()
    return out


@frozen_after_build
class UnaryIndex:
    """Constant-time next-solution for a unary query (Theorem 5.1, k=1)."""

    @pseudo_linear(note="solution list + Theorem 3.1 store")
    def __init__(
        self,
        graph: ColoredGraph,
        phi: Formula,
        var: Var,
        eps: float = 0.5,
        solutions: list[int] | None = None,
        layout: str | None = None,
    ) -> None:
        self.graph = graph
        self.var = var
        if solutions is None:
            # propagate DecompositionError: the engine's method="auto" then
            # falls back to the naive baseline *visibly*
            solutions = unary_solutions(
                graph, phi, var, eps=eps, on_error="raise", layout=layout
            )
        self.solutions = solutions
        self._store: StoredFunction | None = None
        if graph.n > 0:
            self._store = StoredFunction(
                graph.n,
                1,
                eps=eps,
                items=(((v,), True) for v in solutions),
                layout=layout,
            )

    @constant_time(note="one stored-function successor query")
    @read_only
    def next_solution(self, lower: int) -> int | None:
        """Smallest solution ``>= lower`` (None past the end)."""
        if self._store is None or lower >= self.graph.n:
            return None
        key = self._store.successor((max(lower, 0),))
        return None if key is None else key[0]

    @constant_time
    @read_only
    def test(self, v: int) -> bool:
        """Constant-time membership."""
        return self._store is not None and (v,) in self._store

    @read_only
    def __len__(self) -> int:
        return len(self.solutions)


@pseudo_linear(note="Theorem 5.3 stand-in; see docstring for the fallbacks")
def model_check(graph: ColoredGraph, sentence: Formula, eps: float = 0.5) -> bool:
    """Evaluate a sentence — the Theorem 5.3 stand-in.

    (r, q)-independence sentences (Section 5.1.2) are decided via the
    scattered-witness routine; other leading quantifiers peel into unary
    queries (pseudo-linear); Boolean structure recurses; anything else
    falls back to the naive evaluator.
    """
    from repro.core.independence import (
        has_scattered_witnesses,
        match_independence_sentence,
    )

    if free_variables(sentence):
        raise ValueError(f"model_check needs a sentence, got free vars in {sentence!r}")
    matched = match_independence_sentence(sentence)
    if matched is not None:
        count, separation, psi, psi_var = matched
        witnesses = unary_solutions(graph, psi, psi_var, eps=eps)
        return has_scattered_witnesses(graph, witnesses, count, separation)
    if isinstance(sentence, Exists):
        inner_free = free_variables(sentence.body)
        if inner_free <= {sentence.var}:
            return bool(unary_solutions(graph, sentence.body, sentence.var, eps=eps))
    if isinstance(sentence, Forall):
        inner_free = free_variables(sentence.body)
        if inner_free <= {sentence.var}:
            negated = Not(sentence.body)
            return not unary_solutions(graph, negated, sentence.var, eps=eps)
    if isinstance(sentence, Not):
        return not model_check(graph, sentence.body, eps=eps)
    if isinstance(sentence, And):
        return all(model_check(graph, p, eps=eps) for p in sentence.parts)
    if isinstance(sentence, Or):
        return any(model_check(graph, p, eps=eps) for p in sentence.parts)
    return evaluate(graph, sentence, {})
