"""Constant-time distance testing (Proposition 4.2, Section 4.2).

After a pseudo-linear preprocessing we can answer ``dist_G(a, b) <= r?``
in constant time.  The construction follows the paper's five steps:

1. small graphs (``n <= naive_threshold``) are handled by a naive
   all-pairs-within-``r`` table — the paper's ``n <= f_C(r, δ)`` cutoff;
2. build an (r, 2r)-neighborhood cover ``X`` with centers ``c_X``;
3. for every bag compute Splitter's answer ``s_X`` to Connector playing
   ``c_X`` (Remark 4.7) — we insist ``s_X ∈ X`` so the recursion strictly
   shrinks;
4. compute ``R_i(X') = {w : dist_{G[X]}(w, s_X) <= i}`` for ``i <= r`` by
   one BFS inside the bag;
5. recurse on ``X' = G[X \\ {s_X}]`` (one fewer splitter round to go).

Answering (Section 4.2.2): ``dist(a,b) <= r`` iff ``b ∈ X(a)`` and, inside
the bag, either the path avoids ``s_X`` (recursive test in ``X'``) or goes
through it (``R_i(a) ∧ R_j(b)`` with ``i+j <= r``), with the ``a = s_X`` /
``b = s_X`` corner cases.
"""

from __future__ import annotations

from repro.contracts import builds, constant_time, frozen_after_build, pseudo_linear, read_only
from repro.covers.neighborhood_cover import build_cover
from repro.metrics.runtime import count as _metrics_count
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.splitter.strategies import SplitterStrategy, default_strategy
from repro.trace.runtime import span as _trace_span

#: Default "naive algorithm" size cutoff (the paper's f_C(r, δ) role).
DEFAULT_NAIVE_THRESHOLD = 64

#: Default recursion-depth cap — the stand-in for the constant λ(2r) that
#: Theorem 4.6 guarantees for a true nowhere dense class (see DESIGN.md).
DEFAULT_MAX_DEPTH = 3


@frozen_after_build
class DistanceIndex:
    """Tests ``dist(a, b) <= radius`` in constant time after preprocessing.

    Parameters
    ----------
    graph:
        The colored graph (vertex ids ``0..n-1``).
    radius:
        The distance bound ``r``.
    eps:
        Cover/storage exponent.
    naive_threshold:
        Graphs at most this large are solved naively (Step 1).
    strategy:
        Splitter strategy; defaults to :func:`default_strategy`.
    """

    def __init__(
        self,
        graph: ColoredGraph,
        radius: int,
        eps: float = 0.5,
        naive_threshold: int = DEFAULT_NAIVE_THRESHOLD,
        strategy: SplitterStrategy | None = None,
        max_depth: int = DEFAULT_MAX_DEPTH,
        layout: str | None = None,
        _depth: int = 0,
    ) -> None:
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.graph = graph
        self.radius = radius
        self.eps = eps
        self.layout = layout
        self.naive_threshold = max(2, naive_threshold)
        self.max_depth = max_depth
        self._depth = _depth
        self._strategy = strategy
        naive = (
            radius == 0
            or graph.n <= self.naive_threshold
            or graph.num_edges == 0
            or _depth >= max_depth
        )
        if _depth == 0:
            # one span for the whole recursive build, not one per child
            with _trace_span("distance.build", radius=radius, n=graph.n) as sp:
                self._build_naive() if naive else self._build_recursive()
                if sp is not None:
                    sp.attributes["mode"] = self._mode
        else:
            self._build_naive() if naive else self._build_recursive()

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    @pseudo_linear(note="Step 1 cutoff: bounded BFS per vertex, n bounded")
    @builds
    def _build_naive(self) -> None:
        """Step 1: full result for small / edgeless graphs."""
        self._mode = "naive"
        self._pairs: dict[tuple[int, int], int] = {}
        if self.radius == 0 or self.graph.num_edges == 0:
            return  # dist <= 0 and edgeless graphs reduce to equality
        for a in self.graph.vertices():
            for b, d in bounded_bfs(self.graph, [a], self.radius).items():
                self._pairs[(a, b)] = d

    @pseudo_linear(note="Steps 2-5: cover + per-bag splitter recursion")
    @builds
    def _build_recursive(self) -> None:
        self._mode = "cover"
        graph, r = self.graph, self.radius
        strategy = self._strategy or default_strategy(graph)
        self.cover = build_cover(graph, r, eps=self.eps, layout=self.layout)  # Step 2
        self._splitter: list[int] = []
        self._dist_to_s: list[dict[int, int]] = []
        self._children: list["DistanceIndex"] = []
        self._to_child: list[dict[int, int]] = []
        for bag_id, bag in enumerate(self.cover.bags):
            center = self.cover.centers[bag_id]
            # Step 3: Splitter's answer inside the bag (a legal move, since
            # the bag sits inside N_2r(center)).
            s = strategy.choose(graph, bag, bag, center, 2 * r)
            self._splitter.append(s)
            # Step 4: R_i sets by BFS from s inside G[X].
            bag_set = set(bag)
            dist_in_bag = _bfs_within(graph, s, bag_set, r)
            self._dist_to_s.append(dist_in_bag)
            # Step 5: recurse on X' = G[X \ {s}].  The paper's recursion is
            # bounded by the constant λ(2r) (Theorem 4.6); our heuristic
            # strategy has no such certificate, so the depth cap plays λ's
            # role — beyond it, the child is solved naively (Step 1 cutoff),
            # which stays exact.  A shrinkage guard prevents degenerate
            # one-vertex-at-a-time chains on stubborn bags.
            sub, original = graph.relabeled_subgraph(bag_set - {s})
            child_depth = self._depth + 1
            if len(bag_set) - 1 > 0.9 * graph.n:
                child_depth = self.max_depth  # barely shrank: go naive below
            child = DistanceIndex(
                sub,
                r,
                self.eps,
                self.naive_threshold,
                self._strategy,
                self.max_depth,
                layout=self.layout,
                _depth=child_depth,
            )
            self._children.append(child)
            self._to_child.append({v: i for i, v in enumerate(original)})

    # ------------------------------------------------------------------
    # query (Section 4.2.2)
    # ------------------------------------------------------------------
    @constant_time(note="Proposition 4.2 answering phase")
    @read_only
    def test(self, a: int, b: int) -> bool:
        """Is ``dist(a, b) <= radius``?  Constant time."""
        _metrics_count("distance.test")
        if a == b:
            return True
        if self._mode == "naive":
            if self.radius == 0 or self.graph.num_edges == 0:
                return False
            return (a, b) in self._pairs
        bag_id = self.cover.bag_of(a)
        if not self.cover.contains(bag_id, b):
            return False  # N_r(a) ⊆ X(a), so b out of the bag means too far
        s = self._splitter[bag_id]
        dist_s = self._dist_to_s[bag_id]
        if a == s or b == s:
            other = b if a == s else a
            return dist_s.get(other, self.radius + 1) <= self.radius
        da = dist_s.get(a)
        db = dist_s.get(b)
        if da is not None and db is not None and da + db <= self.radius:
            return True  # a path through s_X
        translate = self._to_child[bag_id]
        # contract: depth-capped recursion — lambda(2r) levels, a constant
        return self._children[bag_id].test(translate[a], translate[b])

    @constant_time(note="graded refinement of Proposition 4.2")
    @read_only
    def distance(self, a: int, b: int) -> int | None:
        """The exact distance when ``<= radius``, else None.  Constant time.

        The graded refinement of Proposition 4.2: the same structure
        answers every atom ``dist(x, y) <= d`` with ``d <= radius``, since
        the ``R_i`` recolorings (Step 4) store distances, not just the
        radius-``r`` threshold.
        """
        _metrics_count("distance.distance")
        if a == b:
            return 0
        if self._mode == "naive":
            if self.radius == 0 or self.graph.num_edges == 0:
                return None
            return self._pairs.get((a, b))
        bag_id = self.cover.bag_of(a)
        if not self.cover.contains(bag_id, b):
            return None
        s = self._splitter[bag_id]
        dist_s = self._dist_to_s[bag_id]
        if a == s or b == s:
            other = b if a == s else a
            through = dist_s.get(other)
            return through if through is not None and through <= self.radius else None
        best: int | None = None
        da, db = dist_s.get(a), dist_s.get(b)
        if da is not None and db is not None and da + db <= self.radius:
            best = da + db  # the best path through s_X
        translate = self._to_child[bag_id]
        # contract: depth-capped recursion — lambda(2r) levels, a constant
        avoiding = self._children[bag_id].distance(translate[a], translate[b])
        if avoiding is not None and (best is None or avoiding < best):
            best = avoiding
        return best

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    @read_only
    def recursion_depth(self) -> int:
        """Maximum depth of splitter recursion (the measured λ of E5)."""
        if self._mode == "naive":
            return 0
        return 1 + max((c.recursion_depth for c in self._children), default=0)

    @read_only
    def index_size(self) -> int:
        """Rough size of the index: stored pairs + per-bag tables."""
        if self._mode == "naive":
            return len(self._pairs)
        total = self.cover.total_bag_size()
        total += sum(len(d) for d in self._dist_to_s)
        total += sum(c.index_size() for c in self._children)
        return total

    @read_only
    def __repr__(self) -> str:
        return (
            f"DistanceIndex(r={self.radius}, mode={self._mode}, n={self.graph.n})"
        )


def _bfs_within(
    graph: ColoredGraph, source: int, members: set[int], radius: int
) -> dict[int, int]:
    """Distances from ``source`` inside the induced subgraph on ``members``."""
    dist = {source: 0}
    frontier = [source]
    for _ in range(radius):
        new_frontier = []
        for u in frontier:
            du = dist[u]
            for w in graph.neighbors(u):
                if w in members and w not in dist:
                    dist[w] = du + 1
                    new_frontier.append(w)
        frontier = new_frontier
    return dist
