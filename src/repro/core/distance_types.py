"""Distance types (Section 5.1.2).

The *r-distance type* of a tuple ``ā`` is the undirected graph on the
positions ``{0..k-1}`` with an edge ``{i, j}`` iff ``dist(a_i, a_j) <= r``.
The normal form decomposes a query per type: positions in the same
connected component are "close" (they share a bag), components are
pairwise far, and the query factorizes over components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterator

from repro.contracts import constant_time

#: Guard against exponentially many types for silly arities.
MAX_TYPE_ARITY = 6


@dataclass(frozen=True)
class DistanceType:
    """A distance type: a graph on positions ``0..k-1``."""

    k: int
    edges: frozenset[frozenset[int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for edge in self.edges:
            if len(edge) != 2 or not all(0 <= i < self.k for i in edge):
                raise ValueError(f"invalid type edge {set(edge)} for arity {self.k}")

    @constant_time(note="one frozenset probe")
    def has_edge(self, i: int, j: int) -> bool:
        """Are positions ``i`` and ``j`` within distance r under this type?"""
        return frozenset((i, j)) in self.edges

    @constant_time(note="union-find over k positions, k fixed")
    def components(self) -> list[frozenset[int]]:
        """Connected components, sorted by smallest member."""
        parent = list(range(self.k))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in self.edges:
            i, j = tuple(edge)
            parent[find(i)] = find(j)
        groups: dict[int, set[int]] = {}
        for i in range(self.k):
            groups.setdefault(find(i), set()).add(i)
        return sorted((frozenset(group) for group in groups.values()), key=min)

    @constant_time
    def component_of(self, position: int) -> frozenset[int]:
        for component in self.components():
            if position in component:
                return component
        raise ValueError(f"position {position} out of range")  # pragma: no cover

    @constant_time(note="induced sub-type on at most k positions")
    def restrict(self, positions: frozenset[int]) -> "DistanceType":
        """The induced sub-type on ``positions``, relabeled to ``0..|P|-1``."""
        order = sorted(positions)
        index = {p: i for i, p in enumerate(order)}
        edges = frozenset(
            frozenset((index[i], index[j]))
            for edge in self.edges
            for i, j in [tuple(edge)]
            if i in positions and j in positions
        )
        return DistanceType(len(order), edges)

    def __repr__(self) -> str:
        pairs = sorted(tuple(sorted(e)) for e in self.edges)
        return f"DistanceType(k={self.k}, edges={pairs})"


def all_types(k: int) -> Iterator[DistanceType]:
    """All ``2^(k choose 2)`` distance types of arity ``k``."""
    if k > MAX_TYPE_ARITY:
        raise ValueError(
            f"arity {k} would enumerate 2^{k*(k-1)//2} distance types; "
            f"the engine supports arity <= {MAX_TYPE_ARITY}"
        )
    pairs = list(combinations(range(k), 2))
    for mask in range(1 << len(pairs)):
        edges = frozenset(
            frozenset(pairs[bit]) for bit in range(len(pairs)) if mask >> bit & 1
        )
        yield DistanceType(k, edges)


@constant_time(note="k^2 oracle calls, k fixed")
def type_of(values: tuple[int, ...], close) -> DistanceType:
    """The distance type of ``values`` under the closeness oracle.

    ``close(a, b)`` must decide ``dist(a, b) <= r`` — in the engine this is
    the :class:`~repro.core.distance_index.DistanceIndex` of Prop 4.2.
    """
    k = len(values)
    edges = set()
    for i in range(k):
        for j in range(i + 1, k):
            if close(values[i], values[j]):
                edges.add(frozenset((i, j)))
    return DistanceType(k, frozenset(edges))


@constant_time
def prefix_consistent(tau: DistanceType, prefix_type: DistanceType) -> bool:
    """Does ``tau`` restricted to the first ``k-1`` positions equal
    ``prefix_type``?  (The answering phase's first filter.)"""
    k = prefix_type.k
    restricted = tau.restrict(frozenset(range(k)))
    return restricted == prefix_type
