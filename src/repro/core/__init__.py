"""The paper's primary contribution: Theorem 2.3 and its corollaries.

Layers, bottom to top:

* :mod:`~repro.core.distance_index` — Proposition 4.2 (constant-time
  distance testing);
* :mod:`~repro.core.skip_pointers` — Lemma 5.8;
* :mod:`~repro.core.removal` — Lemma 5.5;
* :mod:`~repro.core.normal_form` — the Theorem 5.4 stand-in;
* :mod:`~repro.core.bag_solver` / :mod:`~repro.core.local_eval` — the
  per-bag recursion (Steps 8-11);
* :mod:`~repro.core.unary` — Theorem 5.3's role (arity <= 1);
* :mod:`~repro.core.last_coordinate` — Lemma 5.2;
* :mod:`~repro.core.next_solution` — Theorem 5.1 / 2.3;
* :mod:`~repro.core.enumeration` — Corollary 2.5;
* :mod:`~repro.core.engine` — the public facade.
"""

from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.counting import CountingIndex, count_solutions
from repro.core.distance_index import DistanceIndex
from repro.core.dynamic import DynamicUnaryIndex
from repro.core.engine import QueryIndex, build_index
from repro.core.enumeration import enumerate_solutions, enumerate_with_delays
from repro.core.last_coordinate import LastCoordinateIndex
from repro.core.next_solution import NextSolutionIndex, increment_tuple
from repro.core.normal_form import Decomposition, DecompositionError, decompose
from repro.core.skip_pointers import SkipPointers
from repro.core.unary import UnaryIndex, model_check, unary_solutions

__all__ = [
    "DEFAULT_CONFIG",
    "EngineConfig",
    "CountingIndex",
    "count_solutions",
    "DynamicUnaryIndex",
    "DistanceIndex",
    "QueryIndex",
    "build_index",
    "enumerate_solutions",
    "enumerate_with_delays",
    "LastCoordinateIndex",
    "NextSolutionIndex",
    "increment_tuple",
    "DecompositionError",
    "Decomposition",
    "decompose",
    "SkipPointers",
    "UnaryIndex",
    "model_check",
    "unary_solutions",
]
