"""The Lemma 5.2 index: constant-time smallest-last-coordinate queries.

Given a k-ary FO+ query ``phi(x_1..x_k)``, after pseudo-linear
preprocessing we answer: *for a prefix ``ā`` and a bound ``b``, what is
the smallest ``b' >= b`` with ``G |= phi(ā, b')``?*

Preprocessing (Section 5.2.1's Steps, adapted per DESIGN.md):

* Step 2 — a :class:`DistanceIndex` at the decomposition radius ``r``
  gives constant-time distance-type tests for prefixes;
* Step 3 — a ``(kr, 2kr)``-neighborhood cover with per-bag ``r``-kernels
  (stored as a ``@K`` color on each bag's subgraph);
* Steps 8-11 — one :class:`BagSolver` per bag (lazy), which internally
  performs the splitter-removal recursion;
* Steps 12-13 — for every alternative whose last-variable component is a
  singleton: the unary solution list ``L`` (bag-local evaluation per
  vertex) and the Lemma 5.8 :class:`SkipPointers` over the kernels.

Answering (Section 5.2.2): for each distance type ``tau`` consistent
with the prefix and each alternative: check the global sentence, test the
components not containing ``x_k`` inside their canonical bags, then

* **Case II** (``x_k`` close to some prefix position ``j*``): search the
  kernel of ``X(a_{j*})`` with the bag query
  ``psi_J ∧ @K(x_k) ∧ ρ_tau-constraints ∧ far-from-in-bag-strangers``;
* **Case I** (``x_k`` far from the whole prefix): 2k'+1 candidates — one
  kernel search per distinct prefix bag (the Splitter vertex is handled
  inside the bag solver), plus one ``SKIP`` query for solutions outside
  every kernel.

The final answer is the minimum over all candidates, as in the paper.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.contracts import (
    amortized,
    builds,
    constant_time,
    frozen_after_build,
    pseudo_linear,
    read_only,
)
from repro.core.bag_solver import BagSolver
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.distance_index import DistanceIndex
from repro.core.distance_types import DistanceType, type_of
from repro.core.normal_form import Alternative, Decomposition, decompose
from repro.core.skip_pointers import SkipPointers
from repro.core.unary import model_check
from repro.covers.kernels import kernel_of_bag
from repro.covers.neighborhood_cover import build_cover
from repro.graphs.colored_graph import ColoredGraph
from repro.trace.runtime import span as _trace_span
from repro.logic.syntax import (
    ColorAtom,
    DistAtom,
    Formula,
    Not,
    Top,
    Var,
    conjunction,
)

#: Color marking the r-kernel inside each bag's subgraph.
KERNEL_COLOR = "@K"


@frozen_after_build(cells={"_solvers": "_memo_lock", "_sentence_cache": "_memo_lock", "_bag_query_cache": "_memo_lock", "_far_structures_cache": "_memo_lock"})
class LastCoordinateIndex:
    """Lemma 5.2 for a fixed query; see the module docstring."""

    #: Shared store lock for the memo cells declared in
    #: ``@frozen_after_build``; class-level so instances stay picklable.
    _memo_lock = threading.Lock()

    @pseudo_linear(note="Section 5.2.1 preprocessing, Steps 2-13")
    def __init__(
        self,
        graph: ColoredGraph,
        phi: Formula,
        free_order: tuple[Var, ...],
        config: EngineConfig = DEFAULT_CONFIG,
        decomposition: Decomposition | None = None,
    ) -> None:
        self.graph = graph
        self.phi = phi
        self.free_order = tuple(free_order)
        self.k = len(free_order)
        if self.k < 2:
            raise ValueError("LastCoordinateIndex needs arity >= 2")
        self.config = config
        self.decomp = decomposition or decompose(phi, self.free_order)
        self.r = self.decomp.radius
        # Step 2: distance oracle at the type scale
        with _trace_span("last.distance_index", radius=self.r):
            self.dist = DistanceIndex(
                graph,
                self.r,
                eps=config.eps,
                naive_threshold=config.dist_naive_threshold,
                max_depth=config.dist_max_depth,
                layout=config.layout,
            )
        # Step 3: (kr, 2kr)-cover and r-kernels
        self.cover = build_cover(
            graph, self.k * self.r, eps=config.eps, workers=config.workers,
            layout=config.layout,
        )
        with _trace_span("last.kernels", bags=len(self.cover.bags), radius=self.r):
            if config.workers > 1 and len(self.cover.bags) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=config.workers) as pool:
                    self.kernels = list(
                        pool.map(
                            lambda bag: kernel_of_bag(graph, bag, self.r),
                            self.cover.bags,
                        )
                    )
            else:
                self.kernels = [
                    kernel_of_bag(graph, bag, self.r) for bag in self.cover.bags
                ]
        self._solvers: dict[int, tuple[BagSolver, dict[int, int], list[int]]] = {}
        self._sentence_cache: dict[Formula, bool] = {}
        self._bag_query_cache: dict[tuple, tuple[Formula, tuple[Var, ...]]] = {}
        if config.workers > 1:
            self._prebuild_solvers(config.workers)
        # Steps 12-13: Case-I structures per distinct singleton-local psi
        self._far_structures_cache: dict[Formula, tuple[list[int], SkipPointers]] = {}
        if config.precompute_far:
            with _trace_span("last.far_structures"):
                last = self.k - 1
                for tau, alternatives in self.decomp.per_type.items():
                    if tau.component_of(last) != frozenset((last,)):
                        continue
                    for alt in alternatives:
                        self._far_structures(alt.local_for(frozenset((last,))))

    # ------------------------------------------------------------------
    # lazy per-bag machinery
    # ------------------------------------------------------------------
    @amortized("O(1)", note="lazy per-bag build; cached thereafter (Steps 8-11)")
    @read_only
    def _solver(self, bag_id: int) -> tuple[BagSolver, dict[int, int], list[int]]:
        entry = self._solvers.get(bag_id)
        if entry is None:
            built = self._build_solver(bag_id)
            with self._memo_lock:
                entry = self._solvers.setdefault(bag_id, built)
        return entry

    @pseudo_linear(note="Steps 8-11 for one bag")
    @read_only
    def _build_solver(self, bag_id: int) -> tuple[BagSolver, dict[int, int], list[int]]:
        with _trace_span(
            "last.bag_solver", bag=bag_id, size=len(self.cover.bags[bag_id])
        ):
            sub, original = self.graph.relabeled_subgraph(self.cover.bags[bag_id])
            to_new = {v: i for i, v in enumerate(original)}
            sub.set_color(KERNEL_COLOR, [to_new[v] for v in self.kernels[bag_id]])
            solver = BagSolver(
                sub,
                max_bound=self.r,
                naive_threshold=self.config.bag_naive_threshold,
                max_depth=self.config.bag_max_depth,
            )
            return (solver, to_new, original)

    @pseudo_linear(note="independent Steps 8-11 per bag, fanned out on threads")
    @builds
    def _prebuild_solvers(self, workers: int) -> None:
        """Eagerly build the per-bag solvers concurrently (``workers > 1``).

        Each bag's Steps 8-11 are independent of every other bag's, so the
        builds fan out on a thread pool; results are committed in bag-id
        order afterwards, keeping the structure deterministic.  The
        sequential path keeps the lazy one-bag-at-a-time behaviour.
        """
        from concurrent.futures import ThreadPoolExecutor

        pending = [
            bag_id
            for bag_id, assigned in enumerate(self.cover.assigned)
            if assigned and bag_id not in self._solvers
        ]
        if not pending:
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            entries = list(pool.map(self._build_solver, pending))
        for bag_id, entry in zip(pending, entries):
            self._solvers[bag_id] = entry

    @amortized("O(1)", note="one model check per distinct sentence, then cached")
    @read_only
    def _sentence_true(self, sentence: Formula) -> bool:
        if isinstance(sentence, Top):
            return True
        cached = self._sentence_cache.get(sentence)
        if cached is None:
            fresh = model_check(self.graph, sentence, eps=self.config.eps)
            with self._memo_lock:
                cached = self._sentence_cache.setdefault(sentence, fresh)
        return cached

    @amortized("O(1)", note="Steps 12-13 built once per psi; precomputable via config")
    @read_only
    def _far_structures(self, psi: Formula) -> tuple[list[int], SkipPointers]:
        """Step 12 (the list ``L``) and Step 13 (skip pointers) for one
        singleton local formula ``psi(x_k)``."""
        cached = self._far_structures_cache.get(psi)
        if cached is None:
            last_var = self.free_order[-1]
            if isinstance(psi, Top):
                targets = list(self.graph.vertices())
            else:
                # Step 12: per-bag unary solution lists L_X, one column per
                # bag (not one evaluation per vertex), then their union
                targets = []
                for bag_id, assigned in enumerate(self.cover.assigned):
                    if not assigned:
                        continue
                    solver, to_new, to_old = self._solver(bag_id)
                    members = set(solver.column(psi, (), (), last_var))
                    targets.extend(v for v in assigned if to_new[v] in members)
                targets.sort()
            skips = SkipPointers(
                self.graph.n,
                targets,
                self.kernels,
                k=max(self.k - 1, 1),
                eps=self.config.eps,
                layout=self.config.layout,
            )
            with self._memo_lock:
                cached = self._far_structures_cache.setdefault(psi, (targets, skips))
        return cached

    # ------------------------------------------------------------------
    # bag queries (the paper's Ψ^i_{τ,J,p}, Step 7)
    # ------------------------------------------------------------------
    @amortized("O(1)", note="query built once per (alt, tau, J, p), then cached")
    @read_only
    def _bag_query(
        self, alt: Alternative, tau: DistanceType, component: frozenset[int], p: int
    ) -> tuple[Formula, tuple[Var, ...]]:
        """Build (and cache) the bag query and its prefix variable order.

        The query is ``psi_J ∧ @K(x_k) ∧ [dist constraints from tau between
        x_k and the J-prefix] ∧ [dist > r to p far in-bag strangers]``."""
        key = (alt, tau, component, p)
        cached = self._bag_query_cache.get(key)
        if cached is not None:
            return cached
        last = self.k - 1
        last_var = self.free_order[-1]
        parts: list[Formula] = [alt.local_for(component), ColorAtom(KERNEL_COLOR, last_var)]
        prefix_vars: list[Var] = []
        for j in sorted(component - {last}):
            var = self.free_order[j]
            prefix_vars.append(var)
            atom = DistAtom(var, last_var, self.r)
            parts.append(atom if tau.has_edge(j, last) else Not(atom))
        for index in range(p):
            stranger = Var(f"@far{index}")
            prefix_vars.append(stranger)
            parts.append(Not(DistAtom(stranger, last_var, self.r)))
        result = (conjunction(parts), tuple(prefix_vars))
        with self._memo_lock:
            result = self._bag_query_cache.setdefault(key, result)
        return result

    # ------------------------------------------------------------------
    # answering phase (Section 5.2.2)
    # ------------------------------------------------------------------
    @constant_time(note="Lemma 5.2: constantly many (tau, alt) candidates")
    @read_only
    def first_last(self, prefix: tuple[int, ...], lower: int) -> int | None:
        """Smallest ``b' >= lower`` with ``G |= phi(prefix, b')``; None if none."""
        if len(prefix) != self.k - 1:
            raise ValueError(
                f"expected a {self.k - 1}-tuple prefix, got {prefix!r}"
            )
        if lower >= self.graph.n:
            return None
        lower = max(lower, 0)
        prefix_type = type_of(prefix, self.dist.test)
        last = self.k - 1
        best: int | None = None
        for tau, alternatives in self.decomp.per_type.items():
            if not alternatives:
                continue
            if tau.restrict(frozenset(range(last))) != prefix_type:
                continue
            for alt in alternatives:
                candidate = self._candidate(tau, alt, prefix, lower)
                if candidate is not None and (best is None or candidate < best):
                    best = candidate
        return best

    @constant_time(note="Corollary 2.4 via one first_last call")
    @read_only
    def test(self, values: tuple[int, ...]) -> bool:
        """Corollary 2.4: is ``values`` a solution?  Constant time."""
        if len(values) != self.k:
            raise ValueError(f"expected a {self.k}-tuple, got {values!r}")
        return self.first_last(values[:-1], values[-1]) == values[-1]

    # -- per-(tau, alternative) candidate ---------------------------------
    @constant_time(note="one candidate per (tau, alternative)")
    @read_only
    def _candidate(
        self,
        tau: DistanceType,
        alt: Alternative,
        prefix: tuple[int, ...],
        lower: int,
    ) -> int | None:
        # contract: amortized — cached after the first check of this sentence
        if not self._sentence_true(alt.sentence):
            return None
        last = self.k - 1
        component_of_last = tau.component_of(last)
        # items (b)/(d): components not containing x_k test directly
        for positions, psi in alt.locals:
            if last in positions or isinstance(psi, Top):
                continue
            if not self._test_component(positions, psi, prefix):
                return None
        if component_of_last == frozenset((last,)):
            return self._case_far(tau, alt, prefix, lower)
        return self._case_near(tau, alt, component_of_last, prefix, lower)

    @constant_time(note="one memoized bag test")
    @read_only
    def _test_component(
        self, positions: frozenset[int], psi: Formula, prefix: tuple[int, ...]
    ) -> bool:
        anchor = prefix[min(positions)]
        bag_id = self.cover.bag_of(anchor)
        # contract: amortized — lazy solver build, cached per bag
        solver, to_new, _ = self._solver(bag_id)
        variables = tuple(self.free_order[i] for i in sorted(positions))
        try:
            values = tuple(to_new[prefix[i]] for i in sorted(positions))
        except KeyError:
            # a component member escaped the bag: impossible for a prefix of
            # this distance type, so the alternative cannot match
            return False
        # contract: amortized — BagSolver.test is memoized per key
        return solver.test(psi, variables, values)

    @constant_time(note="Case II: one kernel search in the j*-bag")
    @read_only
    def _case_near(
        self,
        tau: DistanceType,
        alt: Alternative,
        component: frozenset[int],
        prefix: tuple[int, ...],
        lower: int,
    ) -> int | None:
        """Case II: ``x_k`` close to the prefix part of its component."""
        last = self.k - 1
        j_star = min(j for j in component if j != last and tau.has_edge(j, last))
        bag_id = self.cover.bag_of(prefix[j_star])
        # contract: amortized — lazy solver build, cached per bag
        solver, to_new, to_old = self._solver(bag_id)
        strangers = [
            prefix[i]
            for i in range(last)
            if i not in component and self.cover.contains(bag_id, prefix[i])
        ]
        # contract: amortized — query construction cached per (alt, tau, J, p)
        query, prefix_vars = self._bag_query(alt, tau, component, len(strangers))
        try:
            close_values = [to_new[prefix[j]] for j in sorted(component - {last})]
        except KeyError:
            return None  # a J-member escaped the bag: no solution of this type
        values = tuple(close_values) + tuple(to_new[v] for v in strangers)
        local_lower = bisect_left(to_old, lower)
        if local_lower >= len(to_old):
            return None
        last_var = self.free_order[-1]
        # contract: amortized — served from the memoized column after first use
        found = solver.first_at_least(query, prefix_vars, values, last_var, local_lower)
        return None if found is None else to_old[found]

    @constant_time(note="Case I: 2k'+1 candidates (Section 5.2.2)")
    @read_only
    def _case_far(
        self,
        tau: DistanceType,
        alt: Alternative,
        prefix: tuple[int, ...],
        lower: int,
    ) -> int | None:
        """Case I: ``x_k`` far from every prefix position."""
        last = self.k - 1
        psi = alt.local_for(frozenset((last,)))
        # contract: amortized — Steps 12-13 built once per psi (precomputable)
        _, skips = self._far_structures(psi)
        bag_ids = sorted({self.cover.bag_of(a) for a in prefix})
        last_var = self.free_order[-1]
        best: int | None = None
        for bag_id in bag_ids:
            # contract: amortized — lazy solver build, cached per bag
            solver, to_new, to_old = self._solver(bag_id)
            strangers = [a for a in prefix if self.cover.contains(bag_id, a)]
            # contract: amortized — query construction cached per (alt, tau, J, p)
            query, prefix_vars = self._bag_query(
                alt, tau, frozenset((last,)), len(strangers)
            )
            local_lower = bisect_left(to_old, lower)
            if local_lower >= len(to_old):
                continue
            # contract: amortized — served from the memoized column after first use
            found = solver.first_at_least(
                query,
                prefix_vars,
                tuple(to_new[v] for v in strangers),
                last_var,
                local_lower,
            )
            if found is not None:
                candidate = to_old[found]
                if best is None or candidate < best:
                    best = candidate
        outside = skips.skip(lower, bag_ids)
        if outside is not None and (best is None or outside < best):
            best = outside
        return best
