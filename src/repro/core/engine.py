"""The public facade: build an index, then test / next / enumerate.

:func:`build_index` is the library's main entry point.  It accepts a
query as text or as a :class:`~repro.logic.syntax.Formula`, picks the
tuple coordinate order, and builds either the paper's index
(:class:`~repro.core.next_solution.NextSolutionIndex`) or — when the
query falls outside the decomposable fragment and ``method="auto"`` —
the naive baseline, reporting which one it chose.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.baselines.naive import NaiveIndex
from repro.contracts import constant_time, delay, pseudo_linear
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.enumeration import enumerate_solutions
from repro.core.next_solution import NextSolutionIndex
from repro.core.normal_form import DecompositionError
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.parser import parse_formula
from repro.logic.syntax import Formula, Var
from repro.logic.transform import free_variables
from repro.metrics.runtime import count as _metrics_count
from repro.metrics.runtime import observe as _metrics_observe


@dataclass
class QueryIndex:
    """A built index with the Theorem 2.3 / Corollaries 2.4-2.5 interface.

    Attributes
    ----------
    method:
        ``"indexed"`` (the paper's pipeline) or ``"naive"`` (baseline
        fallback for undecomposable queries).
    preprocessing_seconds:
        Wall-clock time of the preprocessing phase.
    """

    graph: ColoredGraph
    phi: Formula
    free_order: tuple[Var, ...]
    method: str
    preprocessing_seconds: float
    _impl: object

    @property
    def arity(self) -> int:
        """Number of free variables / output tuple width."""
        return len(self.free_order)

    @property
    def exact_delay(self) -> bool:
        """Whether the constant-delay guarantee holds end to end."""
        return getattr(self._impl, "exact_delay", True)

    @constant_time(note="Corollary 2.4 via the chosen implementation")
    def test(self, values: Sequence[int]) -> bool:
        """Corollary 2.4: constant-time membership testing."""
        _metrics_count("engine.test")
        return self._impl.test(tuple(values))

    @constant_time(note="Theorem 2.3 via the chosen implementation")
    def next_solution(self, start: Sequence[int]) -> tuple[int, ...] | None:
        """Theorem 2.3: smallest solution ``>= start`` (lexicographic)."""
        _metrics_count("engine.next_solution")
        return self._impl.next_solution(tuple(start))

    @delay("O(1)", note="Corollary 2.5; naive fallback materializes upfront")
    def enumerate(
        self, start: Sequence[int] | None = None
    ) -> Iterator[tuple[int, ...]]:
        """Corollary 2.5: solutions ``>= start``, increasing, constant delay.

        Omitting ``start`` yields the whole result set; passing a tuple
        resumes mid-stream for free (pagination) — on the naive fallback
        the resume point is found by one binary search, never by
        filtering the materialized list.
        """
        if isinstance(self._impl, NaiveIndex):
            return self._impl.enumerate(None if start is None else tuple(start))
        return enumerate_solutions(
            self._impl, None if start is None else tuple(start)
        )

    def count(self) -> int:
        """|phi(G)| by full enumeration (the paper cites [18] for faster).

        The naive fallback already materialized the result set, so its
        count is a stored length, not a re-enumeration.
        """
        if isinstance(self._impl, NaiveIndex):
            return len(self._impl)
        return sum(1 for _ in self.enumerate())

    def stats(self) -> dict:
        """Observability: what the preprocessing actually built.

        For the indexed method: per induction level, the decomposition
        radius, cover shape and per-bag solver modes.  For the naive
        method: the materialized result size.
        """
        out: dict = {
            "method": self.method,
            "arity": self.arity,
            "preprocessing_seconds": round(self.preprocessing_seconds, 6),
        }
        if isinstance(self._impl, NaiveIndex):
            out["materialized_solutions"] = len(self._impl)
            return out
        out["exact_delay"] = self.exact_delay
        levels = []
        node = self._impl
        while getattr(node, "last", None) is not None:
            last = node.last
            modes = [solver.mode for solver, _, _ in last._solvers.values()]
            levels.append(
                {
                    "arity": node.k,
                    "radius": last.r,
                    "cover_bags": last.cover.num_bags,
                    "cover_degree": last.cover.degree(),
                    "max_bag_size": max(
                        (len(bag) for bag in last.cover.bags), default=0
                    ),
                    "bag_solvers_built": len(last._solvers),
                    "bag_solver_modes": sorted(set(modes)),
                    "far_structures": len(last._far_structures_cache),
                }
            )
            node = getattr(node, "_prefix", None)
            if not hasattr(node, "last"):
                break
        out["levels"] = levels
        return out


@pseudo_linear(note="Theorem 2.3 preprocessing (or naive fallback)")
def build_index(
    graph: ColoredGraph,
    query: Formula | str,
    free_order: Sequence[Var | str] | None = None,
    method: str = "auto",
    config: EngineConfig = DEFAULT_CONFIG,
) -> QueryIndex:
    """Preprocess ``graph`` for ``query`` (Theorem 2.3's preprocessing).

    Parameters
    ----------
    graph:
        A colored graph (see :class:`~repro.graphs.colored_graph.ColoredGraph`).
    query:
        An FO+ formula or its textual form, e.g.
        ``"dist(x, y) > 2 & Blue(y)"``.
    free_order:
        Coordinate order of output tuples; defaults to the free variables
        sorted by name.
    method:
        ``"auto"`` (indexed with naive fallback), ``"indexed"`` (raise if
        the query does not decompose) or ``"naive"``.

    Examples
    --------
    >>> from repro.graphs import grid
    >>> index = build_index(grid(8, 8), "exists z. E(x, z) & E(z, y)")
    >>> index.test(next(index.enumerate()))
    True
    """
    phi = parse_formula(query) if isinstance(query, str) else query
    order = _resolve_order(phi, free_order)
    if method not in ("auto", "indexed", "naive"):
        raise ValueError(f"unknown method {method!r}")
    start = time.perf_counter()
    if method == "naive":
        impl: object = NaiveIndex(graph, phi, order)
        chosen = "naive"
    else:
        try:
            impl = NextSolutionIndex(graph, phi, order, config)
            chosen = "indexed"
        except DecompositionError:
            if method == "indexed":
                raise
            impl = NaiveIndex(graph, phi, order)
            chosen = "naive"
    elapsed = time.perf_counter() - start
    _metrics_observe("engine.preprocessing_seconds", elapsed)
    return QueryIndex(graph, phi, order, chosen, elapsed, impl)


def _resolve_order(
    phi: Formula, free_order: Sequence[Var | str] | None
) -> tuple[Var, ...]:
    actual = free_variables(phi)
    if free_order is None:
        return tuple(sorted(actual, key=lambda v: v.name))
    order = tuple(Var(v) if isinstance(v, str) else v for v in free_order)
    if set(order) != set(actual) or len(order) != len(set(order)):
        raise ValueError(
            f"free_order {sorted(v.name for v in order)} does not match the "
            f"query's free variables {sorted(v.name for v in actual)}"
        )
    return order
