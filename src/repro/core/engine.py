"""The public facade: build an index, then test / next / enumerate.

:func:`build_index` is the library's main entry point.  It accepts a
query as text or as a :class:`~repro.logic.syntax.Formula`, picks the
tuple coordinate order, and builds either the paper's index
(:class:`~repro.core.next_solution.NextSolutionIndex`) or — when the
query falls outside the decomposable fragment and ``method="auto"`` —
the naive baseline, reporting which one it chose.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, replace

from repro.baselines.naive import NaiveIndex
from repro.contracts import constant_time, delay, frozen_after_build, pseudo_linear, read_only
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.enumeration import enumerate_solutions
from repro.core.next_solution import NextSolutionIndex, increment_tuple
from repro.core.normal_form import DecompositionError
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.parser import parse_formula
from repro.logic.syntax import Formula, Var
from repro.logic.transform import free_variables
from repro.metrics.runtime import count as _metrics_count
from repro.metrics.runtime import delay_recorder as _delay_recorder
from repro.metrics.runtime import observe as _metrics_observe
from repro.trace.runtime import span as _trace_span


@dataclass(frozen=True)
class Page:
    """One page of an enumeration (see :meth:`QueryIndex.enumerate_page`).

    ``next_cursor`` is the tuple to resume from — pass it back as
    ``start`` to fetch the following page — or ``None`` when the
    enumeration is exhausted.  It is always a genuine solution (the next
    one after this page), so an immediate resume returns it first.
    """

    items: list[tuple[int, ...]]
    next_cursor: tuple[int, ...] | None

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


@frozen_after_build
@dataclass
class QueryIndex:
    """A built index with the Theorem 2.3 / Corollaries 2.4-2.5 interface.

    Attributes
    ----------
    method:
        ``"indexed"`` (the paper's pipeline) or ``"naive"`` (baseline
        fallback for undecomposable queries).
    preprocessing_seconds:
        Wall-clock time of the preprocessing phase.

    **Thread safety.** Once built, a ``QueryIndex`` is safe for any
    number of concurrent *reader* threads (``test`` / ``next_solution``
    / ``enumerate`` / ``enumerate_page`` / ``count``) without locks.
    This is not prose: the class is ``@frozen_after_build`` and every
    query entry point is ``@read_only``, so ``repro lint`` statically
    rejects any write to reachable index state on the read path (rules
    CCY101-CCY103; see ``docs/contracts.md``).  The only mutations left
    are declared memo cells, filled under their store lock with
    ``setdefault`` so racing readers at worst duplicate work, never
    observe a wrong or partially-built value — exercised by
    ``tests/core/test_concurrent_readers.py`` and enforced at runtime
    under ``repro serve --paranoid``.  Each ``enumerate`` iterator
    carries its own cursor state, so concurrent enumerations do not
    interfere.
    """

    graph: ColoredGraph
    phi: Formula
    free_order: tuple[Var, ...]
    method: str
    preprocessing_seconds: float
    _impl: object
    _static_fingerprint: str | None = None
    _version: int = 0

    @property
    @read_only
    def arity(self) -> int:
        """Number of free variables / output tuple width."""
        return len(self.free_order)

    @property
    @read_only
    def version(self) -> int:
        """Monotone update generation: 0 when freshly built, +1 per applied
        :meth:`insert_edge` / :meth:`delete_edge`.  Two indexes answer for
        the same graph state iff their :attr:`fingerprint` pairs match."""
        return self._version

    @property
    @read_only
    def static_fingerprint(self) -> str:
        """The build-request fingerprint (graph at version 0, query, order,
        method, config) — constant across the whole update lineage.

        :func:`build_index` stamps it from the exact request arguments so
        it equals the serve cache's key; indexes constructed by other
        means compute a best-effort equivalent lazily.
        """
        if self._static_fingerprint is not None:
            return self._static_fingerprint
        from repro.persist.fingerprint import index_fingerprint

        return index_fingerprint(
            self.graph, self.phi, free_order=self.free_order, method=self.method
        )

    @property
    @read_only
    def fingerprint(self) -> tuple[str, int]:
        """The generation-aware identity ``(static_fingerprint, version)``.

        The pair distinguishes update generations of one lineage where the
        static fingerprint alone cannot: cursors, snapshots and the serve
        cache compare both components (see ``docs/updates.md``).
        """
        return (self.static_fingerprint, self._version)

    @property
    @read_only
    def exact_delay(self) -> bool:
        """Whether the constant-delay guarantee holds end to end."""
        return getattr(self._impl, "exact_delay", True)

    @constant_time(note="Corollary 2.4 via the chosen implementation")
    @read_only
    def test(self, values: Sequence[int]) -> bool:
        """Corollary 2.4: constant-time membership testing.

        Total over ``int`` tuples of the right arity: values outside the
        vertex domain ``[0, n)`` are simply not solutions (``False``),
        never an internal error.
        """
        _metrics_count("engine.test")
        probe = tuple(values)
        if len(probe) != self.arity:
            raise ValueError(
                f"expected a {self.arity}-tuple, got {len(probe)} values"
            )
        n = self.graph.n
        for v in probe:
            if v < 0 or v >= n:
                return False
        with _trace_span("engine.test"):
            return self._impl.test(probe)

    @constant_time(note="Theorem 2.3 via the chosen implementation")
    @read_only
    def next_solution(self, start: Sequence[int]) -> tuple[int, ...] | None:
        """Theorem 2.3: smallest solution ``>= start`` (lexicographic).

        ``start`` is a lower bound, not necessarily a domain tuple: any
        integer coordinates are accepted and normalized to the smallest
        domain tuple ``>= start`` first (constant time, arity fixed).
        """
        _metrics_count("engine.next_solution")
        probe = tuple(start)
        if len(probe) != self.arity:
            raise ValueError(
                f"expected a {self.arity}-tuple, got {len(probe)} values"
            )
        clamped = _clamp_start(probe, self.graph.n)
        if clamped is None:
            return None
        with _trace_span("engine.next_solution"):
            return self._impl.next_solution(clamped)

    @delay("O(1)", note="Corollary 2.5; naive fallback materializes upfront")
    @read_only
    def enumerate(
        self, start: Sequence[int] | None = None
    ) -> Iterator[tuple[int, ...]]:
        """Corollary 2.5: solutions ``>= start``, increasing, constant delay.

        Omitting ``start`` yields the whole result set; passing a tuple
        resumes mid-stream for free (pagination) — on the naive fallback
        the resume point is found by one binary search, never by
        filtering the materialized list.
        """
        if isinstance(self._impl, NaiveIndex):
            return self._impl.enumerate(None if start is None else tuple(start))
        return enumerate_solutions(
            self._impl, None if start is None else tuple(start)
        )

    @delay("O(1)", note="Corollary 2.5 pagination: one next_solution call per item")
    @read_only
    def enumerate_page(
        self, start: Sequence[int] | None = None, limit: int = 100
    ) -> Page:
        """One page of :meth:`enumerate`: up to ``limit`` solutions from ``start``.

        First-class pagination on top of Theorem 2.3's oracle: every
        page costs ``O(limit)`` oracle calls regardless of where in the
        result set it starts, so resuming from :attr:`Page.next_cursor`
        is exactly as cheap as starting over — there is no hidden
        re-scan.  Raises ``ValueError`` on a non-positive ``limit``.

        Per-answer delays land in the same ``enumeration.delay_seconds``
        histogram :func:`~repro.core.enumeration.enumerate_solutions`
        feeds (when :func:`repro.metrics.collect` is active).
        """
        if limit < 1:
            raise ValueError(f"page limit must be >= 1, got {limit}")
        if self.arity == 0:
            return Page([()] if self.test(()) else [], None)
        n = self.graph.n
        if n == 0:
            return Page([], None)
        cursor = tuple(start) if start is not None else (0,) * self.arity
        record = _delay_recorder("enumeration.delay_seconds")
        tick = time.perf_counter() if record is not None else 0.0
        items: list[tuple[int, ...]] = []
        while len(items) < limit:
            # each answer's computation is one "enumerate.step" span — the
            # unit the guarantee watchdog holds to the constant-delay budget
            with _trace_span("enumerate.step"):
                found = self.next_solution(cursor)
            if found is None:
                return Page(items, None)
            if record is not None:
                now = time.perf_counter()
                record(now - tick)
                tick = now
            items.append(found)
            bumped = increment_tuple(found, n)
            if bumped is None:
                return Page(items, None)
            cursor = bumped
        # one O(1) peek decides between "more pages" and "exhausted", and
        # doubles as the resume point so the next page skips straight to it
        return Page(items, self.next_solution(cursor))

    @read_only
    def count(self) -> int:
        """|phi(G)| by full enumeration (the paper cites [18] for faster).

        The naive fallback already materialized the result set, so its
        count is a stored length, not a re-enumeration.
        """
        if isinstance(self._impl, NaiveIndex):
            return len(self._impl)
        return sum(1 for _ in self.enumerate())

    @read_only
    def stats(self) -> dict:
        """Observability: what the preprocessing actually built.

        For the indexed method: per induction level, the decomposition
        radius, cover shape and per-bag solver modes.  For the naive
        method: the materialized result size.
        """
        out: dict = {
            "method": self.method,
            "arity": self.arity,
            "preprocessing_seconds": round(self.preprocessing_seconds, 6),
        }
        if isinstance(self._impl, NaiveIndex):
            out["materialized_solutions"] = len(self._impl)
            return out
        out["exact_delay"] = self.exact_delay
        levels = []
        node = self._impl
        while getattr(node, "last", None) is not None:
            last = node.last
            modes = [solver.mode for solver, _, _ in last._solvers.values()]
            levels.append(
                {
                    "arity": node.k,
                    "radius": last.r,
                    "cover_bags": last.cover.num_bags,
                    "cover_degree": last.cover.degree(),
                    "max_bag_size": max(
                        (len(bag) for bag in last.cover.bags), default=0
                    ),
                    "bag_solvers_built": len(last._solvers),
                    "bag_solver_modes": sorted(set(modes)),
                    "far_structures": len(last._far_structures_cache),
                }
            )
            node = getattr(node, "_prefix", None)
            if not hasattr(node, "last"):
                break
        out["levels"] = levels
        return out

    @read_only
    def registers(self) -> dict:
        """The semantically-determined register file, for differential
        testing: a repaired index and a from-scratch rebuild at the same
        graph state dump equal (see :func:`repro.core.repair.register_dump`)."""
        from repro.core.repair import register_dump

        return register_dump(self)

    @pseudo_linear(note="ball-local repair (repro.core.repair); self untouched")
    @read_only
    def insert_edge(self, u: int, v: int) -> "QueryIndex":
        """A new index for ``graph + {u, v}`` at :attr:`version` + 1.

        Updates are *persistent*: ``self`` keeps answering for its own
        generation (readers mid-enumeration are undisturbed) and the
        returned index shares every register the update did not damage —
        only structures whose ``N_rho`` neighborhoods intersect the
        touched ball around ``{u, v}`` are recomputed (Removal-Lemma
        localization; see ``docs/updates.md``).  Raises ``ValueError``
        on self-loops or already-present edges, ``IndexError`` on
        out-of-range vertices.
        """
        return self._with_update(u, v, inserted=True)

    @pseudo_linear(note="ball-local repair (repro.core.repair); self untouched")
    @read_only
    def delete_edge(self, u: int, v: int) -> "QueryIndex":
        """A new index for ``graph - {u, v}`` at :attr:`version` + 1.

        Same persistent-update contract as :meth:`insert_edge`.  Raises
        ``ValueError`` when the edge is absent.
        """
        return self._with_update(u, v, inserted=False)

    @pseudo_linear(note="delegates to the ball-local repair entry point")
    @read_only
    def _with_update(self, u: int, v: int, inserted: bool) -> "QueryIndex":
        from repro.core.repair import repaired_impl

        new_graph = (
            self.graph.with_edge(u, v) if inserted else self.graph.without_edge(u, v)
        )
        start = time.perf_counter()
        impl = repaired_impl(self.graph, new_graph, self._impl, u, v, inserted)
        elapsed = time.perf_counter() - start
        _metrics_observe("engine.update_seconds", elapsed)
        return replace(
            self,
            graph=new_graph,
            _impl=impl,
            preprocessing_seconds=elapsed,
            _version=self._version + 1,
        )


@constant_time(note="one pass over k coordinates, k fixed")
def _clamp_start(start: tuple[int, ...], n: int) -> tuple[int, ...] | None:
    """The smallest tuple in ``[0, n)^k`` that is ``>= start``, or None.

    Makes ``next_solution`` total over integer lower bounds: a negative
    coordinate rounds the suffix up to zeros, a coordinate ``>= n``
    carries into the prefix (there is no tuple with that prefix left).
    """
    out = list(start)
    for i, v in enumerate(out):
        if v < 0:
            for j in range(i, len(out)):
                out[j] = 0
            break
        if v >= n:
            if i == 0:
                return None
            bumped = increment_tuple(tuple(out[:i]), n)
            if bumped is None:
                return None
            return tuple(bumped) + (0,) * (len(out) - i)
    return tuple(out)


@pseudo_linear(note="Theorem 2.3 preprocessing (or naive fallback)")
def build_index(
    graph: ColoredGraph,
    query: Formula | str,
    free_order: Sequence[Var | str] | None = None,
    method: str = "auto",
    config: EngineConfig = DEFAULT_CONFIG,
) -> QueryIndex:
    """Preprocess ``graph`` for ``query`` (Theorem 2.3's preprocessing).

    :func:`repro.api.open_index` is the preferred front door (same
    behaviour, keyword-only configuration); this name is kept stable for
    existing callers and snapshots.

    Parameters
    ----------
    graph:
        A colored graph (see :class:`~repro.graphs.colored_graph.ColoredGraph`).
    query:
        An FO+ formula or its textual form, e.g.
        ``"dist(x, y) > 2 & Blue(y)"``.
    free_order:
        Coordinate order of output tuples; defaults to the free variables
        sorted by name.
    method:
        ``"auto"`` (indexed with naive fallback), ``"indexed"`` (raise if
        the query does not decompose) or ``"naive"``.

    Examples
    --------
    >>> from repro.graphs import grid
    >>> index = build_index(grid(8, 8), "exists z. E(x, z) & E(z, y)")
    >>> index.test(next(index.enumerate()))
    True
    """
    phi = parse_formula(query) if isinstance(query, str) else query
    order = _resolve_order(phi, free_order)
    if method not in ("auto", "indexed", "naive"):
        raise ValueError(f"unknown method {method!r}")
    # stamp the static fingerprint from the *request* arguments (raw
    # free_order, requested method) so it equals the serve cache's key
    from repro.persist.fingerprint import index_fingerprint

    static = index_fingerprint(
        graph, phi, free_order=free_order, config=config, method=method
    )
    start = time.perf_counter()
    with _trace_span("engine.build_index", method=method, arity=len(order)) as sp:
        if method == "naive":
            impl: object = NaiveIndex(graph, phi, order)
            chosen = "naive"
        else:
            try:
                impl = NextSolutionIndex(graph, phi, order, config)
                chosen = "indexed"
            except DecompositionError:
                if method == "indexed":
                    raise
                impl = NaiveIndex(graph, phi, order)
                chosen = "naive"
        if sp is not None:
            sp.attributes["chosen"] = chosen
    elapsed = time.perf_counter() - start
    _metrics_observe("engine.preprocessing_seconds", elapsed)
    return QueryIndex(
        graph, phi, order, chosen, elapsed, impl, _static_fingerprint=static
    )


def _resolve_order(
    phi: Formula, free_order: Sequence[Var | str] | None
) -> tuple[Var, ...]:
    actual = free_variables(phi)
    if free_order is None:
        return tuple(sorted(actual, key=lambda v: v.name))
    order = tuple(Var(v) if isinstance(v, str) else v for v in free_order)
    if set(order) != set(actual) or len(order) != len(set(order)):
        raise ValueError(
            f"free_order {sorted(v.name for v in order)} does not match the "
            f"query's free variables {sorted(v.name for v in actual)}"
        )
    return order
