"""Evaluating (r, q)-independence sentences (Section 5.1.2).

The Rank-Preserving Normal Form's global residue consists of Boolean
combinations of sentences of the form::

    ∃ z_1 ... z_k (  ⋀_{i<j} dist(z_i, z_j) > r'  ∧  ⋀_i ψ(z_i) )

— "there exist k pairwise r'-scattered witnesses of ψ".  Naive
evaluation is O(n^k); this module decides the sentence from the unary
solution set ``U = ψ(G)``:

* **greedy certificate** — repeatedly take the smallest remaining element
  of ``U`` and delete its r'-ball: the picks are pairwise > r' apart by
  construction, so reaching ``k`` picks proves the sentence (linear time,
  and on sparse graphs it almost always settles the answer);
* **exact backtracking** — when the greedy set is smaller than ``k``, a
  DFS over ``U`` with ball pruning decides exactly.  ``U`` is first
  shrunk to the greedy picks' ball closure, keeping the search small.

:func:`match_independence_sentence` recognizes the syntactic pattern so
:func:`repro.core.unary.model_check` can route such sentences here
instead of falling back to the O(n^k) evaluator.
"""

from __future__ import annotations

from collections.abc import Collection

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.logic.syntax import (
    And,
    DistAtom,
    Exists,
    Formula,
    Not,
    Var,
)
from repro.logic.transform import free_variables, substitute


def has_scattered_witnesses(
    graph: ColoredGraph,
    targets: Collection[int],
    count: int,
    separation: int,
) -> bool:
    """Are there ``count`` elements of ``targets`` pairwise ``> separation`` apart?"""
    if count <= 0:
        return True
    remaining = sorted(set(targets))
    if len(remaining) < count:
        return False
    if separation <= 0:
        return True  # distinct vertices are at distance > 0... of each other
    # greedy certificate
    picks = 0
    alive = set(remaining)
    for candidate in remaining:
        if candidate not in alive:
            continue
        picks += 1
        if picks >= count:
            return True
        alive -= set(bounded_bfs(graph, [candidate], separation))
    # exact backtracking on the (small) residual instance
    return _backtrack(graph, sorted(set(targets)), count, separation, 0, set())


def _backtrack(
    graph: ColoredGraph,
    targets: list[int],
    count: int,
    separation: int,
    start: int,
    blocked: set[int],
) -> bool:
    if count == 0:
        return True
    for index in range(start, len(targets)):
        candidate = targets[index]
        if candidate in blocked:
            continue
        if len(targets) - index < count:  # not enough candidates left
            return False
        ball = set(bounded_bfs(graph, [candidate], separation))
        if _backtrack(
            graph, targets, count - 1, separation, index + 1, blocked | ball
        ):
            return True
    return False


def match_independence_sentence(
    sentence: Formula,
) -> tuple[int, int, Formula, Var] | None:
    """Recognize ``∃ z_1..z_k ( pairwise dist > r' ∧ ⋀ ψ(z_i) )``.

    Returns ``(count, separation, psi, psi_var)`` — with every ``ψ(z_i)``
    the same formula up to the variable — or None when the sentence has a
    different shape.  ``k = 1`` (no distance atoms) is matched too.
    """
    variables: list[Var] = []
    body = sentence
    while isinstance(body, Exists):
        variables.append(body.var)
        body = body.body
    if not variables:
        return None
    k = len(variables)
    parts = body.parts if isinstance(body, And) else (body,)
    needed_pairs = {frozenset((u, v)) for i, u in enumerate(variables) for v in variables[i + 1:]}
    separations: set[int] = set()
    witness_parts: dict[Var, list[Formula]] = {v: [] for v in variables}
    for part in parts:
        if (
            isinstance(part, Not)
            and isinstance(part.body, DistAtom)
            and frozenset((part.body.left, part.body.right)) in needed_pairs
        ):
            separations.add(part.body.bound)
            needed_pairs.discard(frozenset((part.body.left, part.body.right)))
            continue
        free = free_variables(part)
        owners = [v for v in variables if v in free]
        if len(owners) != 1 or (free - set(owners)):
            return None  # a conjunct straddles witnesses or mentions others
        witness_parts[owners[0]].append(part)
    if needed_pairs or len(separations) > 1:
        return None  # not all pairs separated, or mixed radii
    separation = separations.pop() if separations else 0
    if k > 1 and separation == 0:
        return None
    # all witnesses must carry the same formula, up to renaming
    canonical = Var("@w")
    shapes = {
        v: And(tuple(substitute(p, {v: canonical}) for p in witness_parts[v]))
        if len(witness_parts[v]) != 1
        else substitute(witness_parts[v][0], {v: canonical})
        for v in variables
    }
    distinct = set(shapes.values())
    if len(distinct) != 1:
        return None
    return k, separation, distinct.pop(), canonical
