"""The Theorem 5.1 index: lexicographically-next solution in constant time.

The nested induction of Section 5 ("the first bullet"):

* arity 0 — evaluate the sentence once;
* arity 1 — a :class:`~repro.core.unary.UnaryIndex` (Theorem 5.3's role);
* arity k — a :class:`~repro.core.last_coordinate.LastCoordinateIndex`
  for the last coordinate (Lemma 5.2) plus a next-solution index for the
  (k-1)-ary projection ``∃x_k phi``:

  - ``k = 2``: the projection is unary; its solution list is computed
    exactly by ``n`` constant-time oracle calls to the Lemma 5.2 index —
    the fully faithful case;
  - ``k >= 3``: the projection is decomposed syntactically when possible
    (guarded queries); otherwise a :class:`PrefixScan` fallback iterates
    prefix candidates with constant-time extension tests.  Testing
    (Corollary 2.4) stays exact constant-time for every arity; only the
    worst-case *delay* guarantee weakens in the fallback — see DESIGN.md.
"""

from __future__ import annotations

from repro.contracts import amortized, constant_time, frozen_after_build, pseudo_linear, read_only
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.last_coordinate import LastCoordinateIndex
from repro.core.normal_form import DecompositionError
from repro.core.unary import UnaryIndex, model_check
from repro.graphs.colored_graph import ColoredGraph
from repro.metrics.runtime import count as _metrics_count
from repro.logic.syntax import Exists, Formula, Var
from repro.trace.runtime import span as _trace_span


@constant_time(note="one pass over k digits, k fixed")
def increment_tuple(values: tuple[int, ...], n: int) -> tuple[int, ...] | None:
    """The lexicographic successor of ``values`` in ``[n]^k``; None at the end."""
    out = list(values)
    for i in range(len(out) - 1, -1, -1):
        if out[i] + 1 < n:
            out[i] += 1
            return tuple(out)
        out[i] = 0
    return None


@frozen_after_build
class RelaxedPrefixIndex:
    """Prefix enumeration via a decomposable relaxation plus the oracle.

    For projections outside the syntactic fragment (far-quantified
    witnesses), :func:`~repro.core.normal_form.relax_projection` drops the
    last position's locals from every alternative, giving a (k-1)-ary
    decomposition that over-approximates extendability.  Its solutions
    are streamed and filtered by the constant-time Lemma 5.2 extension
    oracle: every *emitted* prefix is genuinely extendable, every
    extendable prefix is emitted, and the only slack is the (typically
    short) runs of relaxed-but-unextendable prefixes between hits —
    a large practical improvement over scanning all of ``[n]^{k-1}``.
    """

    @pseudo_linear(note="builds the relaxed (k-1)-ary index")
    def __init__(self, graph: ColoredGraph, oracle: LastCoordinateIndex, config) -> None:
        from repro.core.normal_form import relax_projection

        self._oracle = oracle
        self._n = graph.n
        relaxed = relax_projection(oracle.decomp)
        from repro.logic.syntax import Top

        self._inner = NextSolutionIndex(
            graph,
            Top(),
            oracle.free_order[:-1],
            config,
            decomposition=relaxed,
        )

    @amortized("O(1)", note="filtered streaming: delay amortized over emitted prefixes")
    @read_only
    def next_solution(self, start: tuple[int, ...]) -> tuple[int, ...] | None:
        """Smallest extendable prefix >= start."""
        candidate = self._inner.next_solution(tuple(start))
        while candidate is not None:
            if self._oracle.first_last(candidate, 0) is not None:
                return candidate
            bumped = increment_tuple(candidate, self._n)
            if bumped is None:
                return None
            candidate = self._inner.next_solution(bumped)
        return None

    @property
    @read_only
    def exact_delay(self) -> bool:
        """Filtered streaming: amortized, not worst-case, delay."""
        return False


@frozen_after_build
class PrefixScan:
    """Fallback prefix index: iterate candidates, testing extension in O(1).

    Each individual step is constant time (one Lemma 5.2 oracle call), but
    a long run of extension-free prefixes makes the *delay* linear in that
    run — the price of projections outside the decomposable fragment.
    """

    def __init__(self, oracle: LastCoordinateIndex, n: int, arity: int) -> None:
        self._oracle = oracle
        self._n = n
        self._arity = arity

    @amortized("O(1)", note="each step O(1); delay linear in extension-free runs")
    @read_only
    def next_solution(self, start: tuple[int, ...]) -> tuple[int, ...] | None:
        """Scan prefixes from ``start``, each tested by one O(1) oracle call."""
        candidate: tuple[int, ...] | None = start
        while candidate is not None:
            if self._oracle.first_last(candidate, 0) is not None:
                return candidate
            candidate = increment_tuple(candidate, self._n)
        return None

    @property
    @read_only
    def exact_delay(self) -> bool:
        """Prefix scanning only gives amortized delay."""
        return False


@frozen_after_build
class NextSolutionIndex:
    """Theorem 5.1 (and thus Theorem 2.3) for one query.

    After construction, :meth:`next_solution` returns the smallest
    solution ``>= start`` in lexicographic order (None if exhausted) and
    :meth:`test` decides membership — both in constant time for the
    decomposable fragment.
    """

    @pseudo_linear(note="Theorem 2.3 preprocessing")
    def __init__(
        self,
        graph: ColoredGraph,
        phi: Formula,
        free_order: tuple[Var, ...],
        config: EngineConfig = DEFAULT_CONFIG,
        decomposition=None,
    ) -> None:
        self.graph = graph
        self.phi = phi
        self.free_order = tuple(free_order)
        self.k = len(self.free_order)
        self.config = config
        self._holds: bool | None = None
        self._unary: UnaryIndex | None = None
        self.last: LastCoordinateIndex | None = None
        with _trace_span("next_solution.build", k=self.k):
            if self.k == 0:
                self._holds = model_check(graph, phi, eps=config.eps)
                return
            if self.k == 1:
                self._unary = UnaryIndex(
                    graph, phi, self.free_order[0], eps=config.eps,
                    layout=config.layout,
                )
                return
            self.last = LastCoordinateIndex(
                graph, phi, self.free_order, config, decomposition=decomposition
            )
            if self.k == 2:
                # exact: n constant-time oracle calls enumerate the projection
                solutions = [
                    a
                    for a in graph.vertices()
                    if self.last.first_last((a,), 0) is not None
                ]
                self._prefix = UnaryIndex(
                    graph,
                    Exists(self.free_order[-1], phi),
                    self.free_order[0],
                    eps=config.eps,
                    solutions=solutions,
                    layout=config.layout,
                )
            elif decomposition is not None:
                # a synthetic (relaxed) decomposition has no formula to project:
                # relax again and filter by this level's oracle
                self._prefix = RelaxedPrefixIndex(graph, self.last, config)
            else:
                try:
                    self._prefix = NextSolutionIndex(
                        graph,
                        Exists(self.free_order[-1], phi),
                        self.free_order[:-1],
                        config,
                    )
                except DecompositionError:
                    try:
                        self._prefix = RelaxedPrefixIndex(graph, self.last, config)
                    except (DecompositionError, ValueError):
                        self._prefix = PrefixScan(self.last, graph.n, self.k - 1)

    # ------------------------------------------------------------------
    @property
    @read_only
    def exact_delay(self) -> bool:
        """True when the constant-delay guarantee holds end to end."""
        if self.k <= 2:
            return True
        return getattr(self._prefix, "exact_delay", True)

    @constant_time(note="Theorem 5.1 lexicographically-next solution")
    @read_only
    def next_solution(self, start: tuple[int, ...]) -> tuple[int, ...] | None:
        """Theorem 2.3: the smallest solution ``>= start``."""
        _metrics_count("next_solution.calls")
        if len(start) != self.k:
            raise ValueError(f"expected a {self.k}-tuple, got {start!r}")
        if self.k == 0:
            return () if self._holds else None
        if self.graph.n == 0:
            return None
        if self.k == 1:
            found = self._unary.next_solution(start[0])
            return None if found is None else (found,)
        prefix, lower = start[:-1], start[-1]
        found = self.last.first_last(prefix, lower)
        if found is not None:
            return prefix + (found,)
        bumped = increment_tuple(prefix, self.graph.n)
        if bumped is None:
            return None
        # contract: recursion into the (k-1)-ary prefix index; depth bounded by k
        next_prefix = self._next_prefix(bumped)
        if next_prefix is None:
            return None
        found = self.last.first_last(next_prefix, 0)
        if found is None:  # pragma: no cover - the prefix index promised one
            raise AssertionError(
                f"prefix {next_prefix} advertised an extension but has none"
            )
        return next_prefix + (found,)

    @constant_time(note="one prefix-index call; amortized in the fallback")
    @read_only
    def _next_prefix(self, start: tuple[int, ...]) -> tuple[int, ...] | None:
        if self.k == 2:
            # contract: amortized — k=2 dispatches to the exact UnaryIndex branch
            found = self._prefix.next_solution(start[0])
            return None if found is None else (found,)
        # contract: amortized — PrefixScan/RelaxedPrefixIndex fallback; see DESIGN.md
        return self._prefix.next_solution(start)

    @constant_time(note="Corollary 2.4 testing")
    @read_only
    def test(self, values: tuple[int, ...]) -> bool:
        """Corollary 2.4: constant-time membership."""
        _metrics_count("next_solution.test")
        if len(values) != self.k:
            raise ValueError(f"expected a {self.k}-tuple, got {values!r}")
        if self.k == 0:
            return bool(self._holds)
        if self.k == 1:
            return self._unary.test(values[0])
        return self.last.test(values)
