"""Constant-delay enumeration (Corollary 2.5).

Once Theorem 2.3's index exists, enumeration is the two-line loop the
paper describes: output a solution, form its lexicographic successor
tuple, and ask the index for the next solution at or above it.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.contracts import constant_time, delay
from repro.core.next_solution import NextSolutionIndex, increment_tuple
from repro.metrics.runtime import active as _metrics_active
from repro.metrics.runtime import delay_recorder as _delay_recorder
from repro.trace.runtime import span as _trace_span


@constant_time(note="sum over the fixed set of contracted functions; data-independent")
def _ops_total() -> int | None:
    """Total contracted-function calls so far, or None without ``ops=True``.

    The per-step *difference* of this total is the ``ops`` attribute on
    ``enumerate.step`` spans — the machine-independent delay the guarantee
    watchdog judges.  The sum runs over the codebase's contracted
    functions (a fixed set, independent of the input graph).
    """
    registry = _metrics_active()
    if registry is None or not registry.op_counts:
        return None
    return sum(registry.op_counts.values())


@delay("O(1)", note="Corollary 2.5: one next_solution call per answer")
def enumerate_solutions(
    index: NextSolutionIndex,
    start: tuple[int, ...] | None = None,
) -> Iterator[tuple[int, ...]]:
    """Solutions ``>= start`` in increasing lexicographic order, constant delay.

    ``start`` defaults to the all-zero tuple (i.e. everything).  Resuming
    an enumeration from the middle costs nothing — Theorem 2.3's oracle
    makes every suffix of the stream equally cheap, which is what makes
    pagination over huge result sets practical.

    Inside ``repro.metrics.collect()`` the per-answer delays land in the
    ``enumeration.delay_seconds`` histogram (experiment E9's subject);
    the delay then includes whatever the consumer does between answers,
    so measurement loops should consume tightly.
    """
    if index.k == 0:
        if index.test(()):
            yield ()
        return
    if index.graph.n == 0:
        return
    if start is None:
        start = tuple([0] * index.k)
    record = _delay_recorder("enumeration.delay_seconds")
    tick = time.perf_counter() if record is not None else 0.0
    # each span covers exactly one answer's computation (never consumer
    # time between yields) — the unit the guarantee watchdog budgets
    with _trace_span("enumerate.step", first=True) as sp:
        before = _ops_total() if sp is not None else None
        current = index.next_solution(tuple(start))
        if sp is not None and before is not None:
            sp.attributes["ops"] = _ops_total() - before
    while current is not None:
        if record is not None:
            now = time.perf_counter()
            record(now - tick)
            tick = now
        yield current
        with _trace_span("enumerate.step") as sp:
            before = _ops_total() if sp is not None else None
            bumped = increment_tuple(current, index.graph.n)
            current = (
                None if bumped is None else index.next_solution(bumped)
            )
            if sp is not None and before is not None:
                sp.attributes["ops"] = _ops_total() - before


def enumerate_with_delays(
    index: NextSolutionIndex,
) -> tuple[list[tuple[int, ...]], list[float]]:
    """Enumerate fully, recording the wall-clock delay before each output.

    The delay list is what experiment E9 reports: the paper predicts it is
    flat in ``|G|`` (constant delay), with the first entry covering the
    time-to-first-solution.
    """
    solutions: list[tuple[int, ...]] = []
    delays: list[float] = []
    tick = time.perf_counter()
    for solution in enumerate_solutions(index):
        now = time.perf_counter()
        delays.append(now - tick)
        tick = now
        solutions.append(solution)
    return solutions, delays
