"""Distance-type decomposition — the practical stand-in for the
Rank-Preserving Normal Form (Theorem 5.4, from [18]).

The paper's normal form rewrites any FO+ query ``phi(x̄)`` so that, per
distance type ``tau``, satisfaction is decided by (i) a global sentence
``xi`` and (ii) *local* formulas ``psi_{tau,I}`` evaluated inside a bag
covering each connected component ``I`` of ``tau``.  The model-theoretic
construction is not effectively implementable; we reproduce its
*interface* syntactically (see DESIGN.md, substitution table):

1. normalize ``phi`` (NNF, standardized variables, quantifiers pushed
   through ∨/∧ and miniscoped);
2. anchor every quantified variable through its *guard*: each ∃ needs a
   positive distance-chain atom to an already-anchored variable, each ∀ a
   negated one (:func:`locality_radius` certifies the resulting radius);
3. pick the type scale ``r`` — the max of all certified radii, distance
   bounds, and *cross requirements* (for any atom between variables
   anchored at offsets ``o1, o2`` with bound ``d``, we need
   ``o1 + o2 + d <= r`` so that under a "far" type the atom is certifiably
   false);
4. for each distance type ``tau``, *specialize* the formula: every atom
   linking variables anchored in different components of ``tau`` is
   replaced by ``false`` (components are ``> r`` apart), and the result is
   simplified — this is where e.g. ``∀z (E(x,z) → dist(z,y) <= 2)`` under
   a far type collapses to ``∀z ¬E(x,z)``;
5. split the specialized formula into single-component blocks, put the
   Boolean skeleton into DNF; each clause becomes one alternative ``i``
   with per-component local formulas ``psi^i_{tau,I}`` and a global
   sentence ``xi^i``.

Queries outside this fragment raise :class:`DecompositionError`; the
engine then falls back to the naive evaluator (and says so), mirroring
the calibration note that a *prototype* of the paper's locality indexing
is what is achievable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.contracts import constant_time
from repro.core.distance_types import DistanceType, all_types
from repro.errors import ReproError
from repro.logic.guards import deep_counterexample_guard, deep_guard
from repro.logic.ranks import max_distance_bound
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
    conjunction,
    disjunction,
)
from repro.logic.transform import (
    free_variables,
    negation_normal_form,
    standardize_apart,
)

#: Upper bound on DNF clauses over blocks (guards pathological inputs).
MAX_DNF_CLAUSES = 512


class DecompositionError(ReproError, ValueError):
    """The query is outside the syntactically decomposable fragment.

    Part of the :mod:`repro.errors` hierarchy; still a ``ValueError``
    for pre-hierarchy call sites that catch it as one.
    """


# ---------------------------------------------------------------------------
# normalization helpers
# ---------------------------------------------------------------------------


def push_quantifiers(phi: Formula) -> Formula:
    """Distribute ∃ over ∨ and ∀ over ∧, miniscope conjuncts/disjuncts not
    mentioning the bound variable, and drop vacuous quantifiers."""
    if isinstance(phi, Not):
        return Not(push_quantifiers(phi.body))
    if isinstance(phi, And):
        return And(tuple(push_quantifiers(p) for p in phi.parts))
    if isinstance(phi, Or):
        return Or(tuple(push_quantifiers(p) for p in phi.parts))
    if isinstance(phi, Exists):
        body = push_quantifiers(phi.body)
        if phi.var not in free_variables(body):
            return body
        if isinstance(body, Or):
            return Or(tuple(push_quantifiers(Exists(phi.var, p)) for p in body.parts))
        if isinstance(body, And):
            inside = [p for p in body.parts if phi.var in free_variables(p)]
            outside = [p for p in body.parts if phi.var not in free_variables(p)]
            if outside:
                kept = push_quantifiers(Exists(phi.var, conjunction(inside)))
                return And((kept, *outside))
        return Exists(phi.var, body)
    if isinstance(phi, Forall):
        body = push_quantifiers(phi.body)
        if phi.var not in free_variables(body):
            return body
        if isinstance(body, And):
            return And(tuple(push_quantifiers(Forall(phi.var, p)) for p in body.parts))
        if isinstance(body, Or):
            inside = [p for p in body.parts if phi.var in free_variables(p)]
            outside = [p for p in body.parts if phi.var not in free_variables(p)]
            if outside:
                kept = push_quantifiers(Forall(phi.var, disjunction(inside)))
                return Or((kept, *outside))
        return Forall(phi.var, body)
    return phi


def normalize(phi: Formula) -> Formula:
    """NNF + standardized bound variables + pushed quantifiers."""
    return push_quantifiers(standardize_apart(negation_normal_form(phi)))


def simplify(phi: Formula) -> Formula:
    """Propagate boolean constants and drop vacuous quantifiers."""
    if isinstance(phi, Not):
        body = simplify(phi.body)
        if isinstance(body, Top):
            return Bottom()
        if isinstance(body, Bottom):
            return Top()
        return Not(body)
    if isinstance(phi, And):
        parts = []
        for part in phi.parts:
            part = simplify(part)
            if isinstance(part, Bottom):
                return Bottom()
            if not isinstance(part, Top):
                parts.append(part)
        return conjunction(parts)
    if isinstance(phi, Or):
        parts = []
        for part in phi.parts:
            part = simplify(part)
            if isinstance(part, Top):
                return Top()
            if not isinstance(part, Bottom):
                parts.append(part)
        return disjunction(parts)
    if isinstance(phi, Exists):
        body = simplify(phi.body)
        if isinstance(body, Bottom):
            return Bottom()
        if phi.var not in free_variables(body):
            # over a non-empty domain, ∃z body = body when z is unused
            return body
        return Exists(phi.var, body)
    if isinstance(phi, Forall):
        body = simplify(phi.body)
        if isinstance(body, Top):
            return Top()
        if phi.var not in free_variables(body):
            return body
        return Forall(phi.var, body)
    return phi


# ---------------------------------------------------------------------------
# guard / locality analysis
# ---------------------------------------------------------------------------


def _guard_bound(atom: Formula, var: Var, env, positive: bool) -> int | None:
    """If ``atom`` (with the given polarity) ties ``var`` to an anchored
    variable, return the implied offset bound; else None."""
    if not positive:
        if isinstance(atom, Not):
            return _guard_bound(atom.body, var, env, positive=True)
        return None
    if isinstance(atom, (EdgeAtom, DistAtom, EqAtom)):
        if atom.left == var:
            other = atom.right
        elif atom.right == var:
            other = atom.left
        else:
            return None
        if other == var or other not in env:
            return None
        bound = 1 if isinstance(atom, EdgeAtom) else (
            atom.bound if isinstance(atom, DistAtom) else 0
        )
        offset = env[other] if isinstance(env[other], int) else env[other][1]
        return offset + bound
    return None


def locality_radius(phi: Formula, anchors: frozenset[Var]) -> int | None:
    """A radius ``rho`` such that ``phi(ā)`` has the same value on ``G``
    and on any induced subgraph containing ``N_rho(ā)`` — or None when the
    guard analysis cannot certify one.

    ``phi`` must be normalized.  Every existential needs a positive guard
    atom in its conjunction; every universal a negated guard atom in its
    disjunction (vertices violating the guard satisfy that disjunct).
    """

    def walk(node: Formula, env: dict[Var, int]) -> int | None:
        if isinstance(node, (Top, Bottom)):
            return 0
        if isinstance(node, ColorAtom):
            return env.get(node.var)
        if isinstance(node, EqAtom):
            left, right = env.get(node.left), env.get(node.right)
            if left is None or right is None:
                return None
            return max(left, right)
        if isinstance(node, (EdgeAtom, DistAtom)):
            left, right = env.get(node.left), env.get(node.right)
            if left is None or right is None:
                return None
            bound = node.bound if isinstance(node, DistAtom) else 1
            return max(left, right, min(left, right) + bound)
        if isinstance(node, Not):
            return walk(node.body, env)
        if isinstance(node, (And, Or)):
            radii = [walk(p, env) for p in node.parts]
            if any(rho is None for rho in radii):
                return None
            return max(radii, default=0)
        if isinstance(node, Exists):
            guard = deep_guard(node.body, node.var, env)
            if guard is None:
                return None
            inner_env = dict(env)
            inner_env[node.var] = guard[1]
            return walk(node.body, inner_env)
        if isinstance(node, Forall):
            guard = deep_counterexample_guard(node.body, node.var, env)
            if guard is None:
                return None
            inner_env = dict(env)
            inner_env[node.var] = guard[1]
            return walk(node.body, inner_env)
        raise TypeError(f"unknown formula node: {node!r}")

    return walk(phi, {v: 0 for v in anchors})


def cross_requirement(phi: Formula, anchors: frozenset[Var]) -> int:
    """The largest ``offset(u) + offset(v) + bound`` over atoms of ``phi``.

    Choosing the type scale at least this large guarantees that every atom
    between variables anchored in *different* components is certifiably
    false under the type (components are ``> r`` apart).  Unguarded
    variables contribute nothing (their blocks fail the locality check
    anyway).
    """
    worst = 0

    def walk(node: Formula, env: dict[Var, int]) -> None:
        nonlocal worst
        if isinstance(node, (EdgeAtom, DistAtom, EqAtom)):
            left, right = env.get(node.left), env.get(node.right)
            if left is not None and right is not None:
                bound = 1 if isinstance(node, EdgeAtom) else (
                    node.bound if isinstance(node, DistAtom) else 0
                )
                worst = max(worst, left + right + bound)
            return
        if isinstance(node, Not):
            walk(node.body, env)
            return
        if isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part, env)
            return
        if isinstance(node, Exists):
            guard = deep_guard(node.body, node.var, env)
            inner_env = dict(env)
            if guard is not None:
                inner_env[node.var] = guard[1]
            walk(node.body, inner_env)
            return
        if isinstance(node, Forall):
            guard = deep_counterexample_guard(node.body, node.var, env)
            inner_env = dict(env)
            if guard is not None:
                inner_env[node.var] = guard[1]
            walk(node.body, inner_env)
            return

    walk(phi, {v: 0 for v in anchors})
    return worst


# ---------------------------------------------------------------------------
# per-type specialization
# ---------------------------------------------------------------------------


def specialize_for_type(
    phi: Formula,
    component_of: dict[Var, int],
    radius: int,
    tau_edge=None,
) -> Formula:
    """Resolve atoms across components, assuming components are > radius
    apart, then simplify.

    ``component_of`` maps each *free* variable to its component id under
    the current distance type.  Quantified variables inherit the component
    of their cheapest guard; atoms between variables of different
    components are replaced by ``false`` when the anchoring offsets
    certify the contradiction, and the caller guarantees (via
    :func:`cross_requirement`) that they always do.
    """

    def resolve_atom(node, env) -> Formula:
        left = env.get(node.left)
        right = env.get(node.right)
        if left is None or right is None:
            return node  # an unanchored side: leave untouched
        (comp_l, off_l), (comp_r, off_r) = left, right
        bound = 1 if isinstance(node, EdgeAtom) else (
            node.bound if isinstance(node, DistAtom) else 0
        )
        both_free = (
            tau_edge is not None
            and off_l == 0
            and off_r == 0
            and node.left in component_of
            and node.right in component_of
        )
        if both_free and node.left != node.right:
            # the type pins the pair exactly at scale `radius`
            if not tau_edge(node.left, node.right):
                return Bottom()  # dist > radius >= bound
            if isinstance(node, DistAtom) and node.bound >= radius:
                return Top()  # dist <= radius <= bound
            return node
        if comp_l == comp_r:
            return node
        if off_l + off_r + bound <= radius:
            return Bottom()
        raise DecompositionError(
            f"atom {node!r} crosses components but is not certifiably false "
            f"(offsets {off_l}+{off_r}+{bound} > type scale {radius})"
        )

    def walk(node: Formula, env: dict[Var, tuple[int, int]]) -> Formula:
        if isinstance(node, (Top, Bottom, ColorAtom)):
            return node
        if isinstance(node, (EdgeAtom, DistAtom, EqAtom)):
            return resolve_atom(node, env)
        if isinstance(node, Not):
            return Not(walk(node.body, env))
        if isinstance(node, And):
            return And(tuple(walk(p, env) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(walk(p, env) for p in node.parts))
        if isinstance(node, (Exists, Forall)):
            positive = isinstance(node, Exists)
            best: tuple[int, int] | None = None  # (component, offset)
            if positive:
                anchored = {v: off for v, (_, off) in env.items()}
                guard = deep_guard(node.body, node.var, anchored)
                if guard is not None:
                    best = (env[guard[0]][0], guard[1])
            else:
                anchored = {v: off for v, (_, off) in env.items()}
                guard = deep_counterexample_guard(node.body, node.var, anchored)
                if guard is not None:
                    best = (env[guard[0]][0], guard[1])
            inner_env = dict(env)
            if best is not None:
                inner_env[node.var] = best
            else:
                inner_env.pop(node.var, None)
            body = walk(node.body, inner_env)
            return Exists(node.var, body) if positive else Forall(node.var, body)
        raise TypeError(f"unknown formula node: {node!r}")

    env0 = {var: (component, 0) for var, component in component_of.items()}
    return simplify(walk(phi, env0))


# ---------------------------------------------------------------------------
# blocks and the boolean skeleton
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Block:
    """A skeleton leaf: an atom or quantified subformula with its anchors."""

    formula: Formula
    anchors: frozenset[Var]
    radius: int  # certified locality radius around the anchors


def _split_blocks(phi: Formula, free_vars: frozenset[Var]):
    """Return (skeleton, blocks): the Boolean structure of ``phi`` over
    locality-certified leaf blocks."""
    blocks: dict[int, Block] = {}
    index: dict[Formula, int] = {}

    def leaf(node: Formula, polarity: bool):
        anchors = free_variables(node) & free_vars
        if not anchors:
            # a closed block is a sentence (the paper's ξ): evaluated
            # globally by model_check, no locality certificate needed
            rho: int | None = 0
        else:
            rho = locality_radius(node, anchors)
        if rho is None:
            raise DecompositionError(f"subformula is not certifiably local: {node!r}")
        block_id = index.get(node)
        if block_id is None:
            block_id = len(blocks)
            index[node] = block_id
            blocks[block_id] = Block(node, anchors, rho)
        return ("lit", block_id, polarity)

    def walk(node: Formula, polarity: bool):
        if isinstance(node, Not):
            return walk(node.body, not polarity)
        if isinstance(node, And):
            tag = "and" if polarity else "or"
            return (tag, tuple(walk(p, polarity) for p in node.parts))
        if isinstance(node, Or):
            tag = "or" if polarity else "and"
            return (tag, tuple(walk(p, polarity) for p in node.parts))
        if isinstance(node, Top):
            return ("const", polarity)
        if isinstance(node, Bottom):
            return ("const", not polarity)
        return leaf(node, polarity)

    return walk(phi, True), blocks


def _dnf(skeleton) -> list[dict[int, bool]]:
    """DNF clauses over block literals; each maps block id -> polarity."""
    tag = skeleton[0]
    if tag == "const":
        return [{}] if skeleton[1] else []
    if tag == "lit":
        return [{skeleton[1]: skeleton[2]}]
    if tag == "or":
        clauses: list[dict[int, bool]] = []
        for part in skeleton[1]:
            clauses.extend(_dnf(part))
            if len(clauses) > MAX_DNF_CLAUSES:
                raise DecompositionError("query's DNF over blocks is too large")
        return clauses
    if tag == "and":
        clauses = [{}]
        for part in skeleton[1]:
            new_clauses = []
            for left in clauses:
                for right in _dnf(part):
                    merged = dict(left)
                    consistent = True
                    for block_id, polarity in right.items():
                        if merged.get(block_id, polarity) != polarity:
                            consistent = False
                            break
                        merged[block_id] = polarity
                    if consistent:
                        new_clauses.append(merged)
            clauses = new_clauses
            if len(clauses) > MAX_DNF_CLAUSES:
                raise DecompositionError("query's DNF over blocks is too large")
        return clauses
    raise AssertionError(f"bad skeleton tag {tag}")  # pragma: no cover


# ---------------------------------------------------------------------------
# the decomposition proper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Alternative:
    """One alternative ``i`` for a distance type: per-component local
    formulas plus a global sentence (the paper's ``psi^i_{tau,I}`` and
    ``xi^i_tau``)."""

    locals: tuple[tuple[frozenset[int], Formula], ...]  # (positions, psi)
    sentence: Formula

    @constant_time(note="at most k single-component blocks, k fixed")
    def local_for(self, component: frozenset[int]) -> Formula:
        """``psi^i_{tau,I}`` for the given component (Top when absent)."""
        for positions, psi in self.locals:
            if positions == component:
                return psi
        return Top()


@dataclass
class Decomposition:
    """The engine-facing decomposition of a query (Theorem 5.4 interface)."""

    free_order: tuple[Var, ...]
    radius: int
    per_type: dict[DistanceType, tuple[Alternative, ...]]

    @property
    def arity(self) -> int:
        """Number of free variables of the decomposed query."""
        return len(self.free_order)


def decompose(phi: Formula, free_order: tuple[Var, ...]) -> Decomposition:
    """Decompose ``phi`` by distance types (the Theorem 5.4 stand-in).

    Raises :class:`DecompositionError` when ``phi`` falls outside the
    supported fragment (the engine then answers naively instead).
    """
    free_vars = frozenset(free_order)
    phi0 = normalize(phi)
    # certify locality of every block of the *unspecialized* formula; this
    # also determines the base radius
    _, base_blocks = _split_blocks(phi0, free_vars)
    radius = max(
        [1, max_distance_bound(phi0), cross_requirement(phi0, free_vars)]
        + [b.radius for b in base_blocks.values()]
    )
    position = {var: i for i, var in enumerate(free_order)}
    per_type: dict[DistanceType, tuple[Alternative, ...]] = {}
    for tau in all_types(len(free_order)):
        components = tau.components()
        component_id = {}
        for cid, members in enumerate(components):
            for pos in members:
                component_id[free_order[pos]] = cid

        def tau_edge(u: Var, v: Var, _tau=tau) -> bool:
            return _tau.has_edge(position[u], position[v])

        phi_tau = specialize_for_type(phi0, component_id, radius, tau_edge)
        skeleton, blocks = _split_blocks(phi_tau, free_vars)
        alternatives: list[Alternative] = []
        for clause in _dnf(skeleton):
            alternative = _clause_to_alternative(
                clause, blocks, components, position
            )
            if alternative is not None and alternative not in alternatives:
                alternatives.append(alternative)
        per_type[tau] = tuple(alternatives)
    return Decomposition(free_order, radius, per_type)


def _clause_to_alternative(
    clause: dict[int, bool],
    blocks: dict[int, Block],
    components: list[frozenset[int]],
    position: dict[Var, int],
) -> Alternative | None:
    local_parts: dict[frozenset[int], list[Formula]] = {}
    sentence_parts: list[Formula] = []
    for block_id, polarity in sorted(clause.items()):
        block = blocks[block_id]
        literal = block.formula if polarity else Not(block.formula)
        anchor_positions = {position[v] for v in block.anchors}
        if not anchor_positions:
            sentence_parts.append(literal)
            continue
        home = next(
            (c for c in components if anchor_positions <= c), None
        )
        if home is None:
            raise DecompositionError(
                f"specialized block still crosses components: {block.formula!r}"
            )
        local_parts.setdefault(home, []).append(literal)
    locals_tuple = tuple(
        (component, conjunction(parts))
        for component, parts in sorted(local_parts.items(), key=lambda kv: min(kv[0]))
    )
    return Alternative(locals_tuple, conjunction(sentence_parts))


def relax_projection(decomposition: Decomposition) -> Decomposition:
    """A decomposable weakening of ``∃x_k phi``'s projection.

    Used by the arity >= 3 enumeration fallback: dropping, per
    alternative, every local formula whose component contains the last
    position yields a (k-1)-ary decomposition that (a) is *implied by*
    extendability — an extendable prefix satisfies the witnessing
    alternative's sentence and all its prefix-component locals — and (b)
    stays inside the engine's fragment by construction.  Streaming its
    solutions and filtering with the constant-time Lemma 5.2 extension
    oracle enumerates the true projection (see
    :class:`~repro.core.next_solution.RelaxedPrefixIndex`).
    """
    k = decomposition.arity
    if k < 2:
        raise ValueError("relax_projection needs arity >= 2")
    last = k - 1
    prefix_order = decomposition.free_order[:-1]
    per_type: dict[DistanceType, list[Alternative]] = {}
    for tau, alternatives in decomposition.per_type.items():
        restricted = tau.restrict(frozenset(range(last)))
        bucket = per_type.setdefault(restricted, [])
        for alt in alternatives:
            kept = tuple(
                (positions, psi)
                for positions, psi in alt.locals
                if last not in positions
            )
            relaxed = Alternative(kept, alt.sentence)
            if relaxed not in bucket:
                bucket.append(relaxed)
    return Decomposition(
        prefix_order,
        decomposition.radius,
        {tau: tuple(alts) for tau, alts in per_type.items()},
    )
