"""Unified exception hierarchy (``repro.errors``).

Every error the library raises because of *user input* — malformed
formula text, a broken graph file, an out-of-fragment query asked to use
the indexed engine, a rejected snapshot, a bad CLI flag or service
request — derives from :class:`ReproError`.  Internal invariant
violations stay plain ``AssertionError``/``RuntimeError``; genuinely
programmatic misuse (wrong types passed to library functions) stays
``TypeError``/``ValueError``.

Two consequences:

* the CLI (:mod:`repro.cli`) is a thin mapper: it catches
  :class:`ReproError` at the top level and turns it into a one-line
  message on stderr plus the subclass's :attr:`~ReproError.exit_code` —
  no scattered ``SystemExit`` calls in library code;
* the HTTP service (:mod:`repro.serve`) maps the same hierarchy onto
  status codes (input errors become 4xx responses, never tracebacks).

Backwards compatibility: the pre-existing exception classes keep their
historical bases *in addition to* :class:`ReproError` —
:class:`~repro.logic.parser.ParseError` and
:class:`~repro.core.normal_form.DecompositionError` are still
``ValueError`` subclasses, so ``except ValueError:`` call sites keep
working — and every class is importable from here as well as from its
defining module (lazily, so this module stays import-cycle free).
"""

from __future__ import annotations

import importlib


class ReproError(Exception):
    """Base class for every user-input error the library raises.

    Attributes
    ----------
    exit_code:
        What the ``repro`` CLI exits with when this error reaches
        :func:`repro.cli.main` uncaught.  ``2`` marks bad input (the
        argparse convention), ``1`` marks a valid request the engine
        could not satisfy.
    """

    exit_code = 1


class UsageError(ReproError):
    """Malformed command-line or request input (CLI exit code 2)."""

    exit_code = 2


class GraphFormatError(ReproError, ValueError):
    """A graph or database document could not be parsed.

    Subclasses ``ValueError`` so pre-hierarchy call sites that caught
    ``ValueError`` around :mod:`repro.graphs.io` readers keep working.
    """

    exit_code = 2


#: name -> defining module, for the lazy re-exports below.
_ALIASES = {
    "ParseError": "repro.logic.parser",
    "DecompositionError": "repro.core.normal_form",
    "SnapshotError": "repro.persist.snapshot",
    "SnapshotCorrupted": "repro.persist.snapshot",
    "SnapshotVersionMismatch": "repro.persist.snapshot",
    "SnapshotStale": "repro.persist.snapshot",
    "ReportError": "repro.reporting",
    "ServeError": "repro.serve.service",
    "BadRequest": "repro.serve.service",
    "ServiceUnavailable": "repro.serve.service",
}

__all__ = [
    "ReproError",
    "UsageError",
    "GraphFormatError",
    *sorted(_ALIASES),
]


def __getattr__(name: str):
    module = _ALIASES.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_ALIASES))
