"""Colored graphs (Section 2 of the paper).

A *c-colored graph* is a finite structure over the schema
``sigma_c = {E, C_1, ..., C_c}`` where ``E`` is a symmetric binary relation
and each ``C_i`` is a unary relation ("color").  The paper reduces every
relational database to this format (Lemma 2.2), so colored graphs are the
single substrate every index in :mod:`repro.core` is built on.

Vertices are always the integers ``0 .. n-1``.  The linear order the paper
assumes on the domain is the natural order on those integers; the
lexicographic order on tuples is Python's tuple order.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping


class ColoredGraph:
    """An undirected graph on vertices ``0..n-1`` with named vertex colors.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges (in either orientation) are stored once.
    colors:
        Mapping from color name to an iterable of the vertices carrying it.

    Examples
    --------
    >>> g = ColoredGraph(4, [(0, 1), (1, 2)], colors={"B": [2, 3]})
    >>> g.degree(1)
    2
    >>> g.has_color(2, "B")
    True
    """

    __slots__ = ("_n", "_adj", "_colors", "_edge_count")

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] = (),
        colors: Mapping[str, Iterable[int]] | None = None,
    ) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self._edge_count = 0
        for u, v in edges:
            self.add_edge(u, v)
        self._colors: dict[str, set[int]] = {}
        if colors:
            for name, members in colors.items():
                self.set_color(name, members)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices (the paper's ``|G|``)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    @property
    def size(self) -> int:
        """Encoding size ``||G|| = |V| + |E|`` (Section 2)."""
        return self._n + self._edge_count

    def vertices(self) -> range:
        """The vertex set, in the assumed linear order."""
        return range(self._n)

    def neighbors(self, v: int) -> frozenset[int]:
        """The open neighborhood of ``v``."""
        self._check_vertex(v)
        return frozenset(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Is ``{u, v}`` an edge?"""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as pairs ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``{u, v}`` (idempotent; no loops)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u} not allowed")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._edge_count += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}``.

        Raises :class:`ValueError` when the edge is absent — callers that
        want idempotence should guard with :meth:`has_edge`.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise ValueError(f"edge ({u}, {v}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_count -= 1

    def with_edge(self, u: int, v: int) -> "ColoredGraph":
        """A structurally shared copy with edge ``{u, v}`` added.

        Only the adjacency sets of ``u`` and ``v`` are fresh; every other
        vertex shares its neighbor set with ``self`` (O(n) pointer copies,
        not O(n + m)).  The returned graph must therefore never be mutated
        in place — it exists for the persistent update path in
        :mod:`repro.core.repair`, where each version is frozen on arrival.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u} not allowed")
        if v in self._adj[u]:
            raise ValueError(f"edge ({u}, {v}) already present")
        out = ColoredGraph.__new__(ColoredGraph)
        out._n = self._n
        out._adj = list(self._adj)
        out._adj[u] = self._adj[u] | {v}
        out._adj[v] = self._adj[v] | {u}
        out._edge_count = self._edge_count + 1
        out._colors = dict(self._colors)
        return out

    def without_edge(self, u: int, v: int) -> "ColoredGraph":
        """A structurally shared copy with edge ``{u, v}`` removed.

        Same sharing contract as :meth:`with_edge`: treat the result as
        immutable.  Raises :class:`ValueError` when the edge is absent.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise ValueError(f"edge ({u}, {v}) not present")
        out = ColoredGraph.__new__(ColoredGraph)
        out._n = self._n
        out._adj = list(self._adj)
        out._adj[u] = self._adj[u] - {v}
        out._adj[v] = self._adj[v] - {u}
        out._edge_count = self._edge_count - 1
        out._colors = dict(self._colors)
        return out

    def set_color(self, name: str, members: Iterable[int]) -> None:
        """Define (or replace) the extension of color ``name``."""
        member_set = set(members)
        for v in member_set:
            self._check_vertex(v)
        self._colors[name] = member_set

    def add_to_color(self, name: str, v: int) -> None:
        """Add ``v`` to color ``name`` (creating the color if needed)."""
        self._check_vertex(v)
        self._colors.setdefault(name, set()).add(v)

    def discard_from_color(self, name: str, v: int) -> None:
        """Remove ``v`` from color ``name`` (no-op when absent).  O(1)."""
        self._check_vertex(v)
        members = self._colors.get(name)
        if members is not None:
            members.discard(v)

    # ------------------------------------------------------------------
    # colors
    # ------------------------------------------------------------------
    @property
    def color_names(self) -> frozenset[str]:
        """The declared color names."""
        return frozenset(self._colors)

    def color(self, name: str) -> frozenset[int]:
        """The extension of color ``name`` (empty if undeclared)."""
        return frozenset(self._colors.get(name, ()))

    def has_color(self, v: int, name: str) -> bool:
        """Does ``v`` carry color ``name``?"""
        self._check_vertex(v)
        return v in self._colors.get(name, ())

    def colors_of(self, v: int) -> frozenset[str]:
        """All colors carried by ``v``."""
        self._check_vertex(v)
        return frozenset(name for name, members in self._colors.items() if v in members)

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def copy(self) -> "ColoredGraph":
        """A deep, independent copy."""
        out = ColoredGraph(self._n)
        for u in range(self._n):
            out._adj[u] = set(self._adj[u])
        out._edge_count = self._edge_count
        out._colors = {name: set(members) for name, members in self._colors.items()}
        return out

    def relabeled_subgraph(self, vertices: Iterable[int]) -> tuple["ColoredGraph", list[int]]:
        """Induced subgraph on ``vertices``, relabeled to ``0..m-1``.

        Returns the subgraph together with the list ``original`` mapping the
        new label ``i`` back to the original vertex ``original[i]``.  The new
        labels preserve the original order, so lexicographic comparisons in
        the subgraph agree with the ambient graph — a property the Section 5
        recursion relies on when diving into bags.
        """
        original = sorted(set(vertices))
        for v in original:
            self._check_vertex(v)
        index = {v: i for i, v in enumerate(original)}
        sub = ColoredGraph(len(original))
        for v in original:
            i = index[v]
            for w in self._adj[v]:
                j = index.get(w)
                if j is not None and i < j:
                    sub.add_edge(i, j)
        # collect colors per member vertex (O(|B| * #colors)), not by
        # scanning whole color extensions (O(n)) — subgraph extraction must
        # stay ball-sized for the dynamic index's update bound
        inside: dict[str, list[int]] = {}
        for v in original:
            for name, members in self._colors.items():
                if v in members:
                    inside.setdefault(name, []).append(index[v])
        for name, vertices in inside.items():
            sub.set_color(name, vertices)
        return sub, original

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise IndexError(f"vertex {v} out of range [0, {self._n})")

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"ColoredGraph(n={self._n}, edges={self._edge_count}, "
            f"colors={sorted(self._colors)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColoredGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._adj == other._adj
            and {k: v for k, v in self._colors.items() if v}
            == {k: v for k, v in other._colors.items() if v}
        )

    def __hash__(self):  # pragma: no cover - mutable, unhashable by design
        raise TypeError("ColoredGraph is mutable and unhashable")
