"""Graph substrate: colored graphs, neighborhoods, generators, sparsity.

The paper (Section 2) reduces all relational structures to *c-colored
graphs*: undirected graphs whose vertices carry unary color predicates.
Every algorithm in :mod:`repro.core` operates on
:class:`~repro.graphs.colored_graph.ColoredGraph`.
"""

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import (
    binary_tree,
    bounded_degree_random_graph,
    caterpillar,
    cycle,
    grid,
    hex_grid,
    long_cycle_with_chords,
    outerplanar_random_graph,
    partial_k_tree,
    path,
    random_forest,
    random_planar_like_graph,
    random_tree,
    star,
    subdivided_clique,
)
from repro.graphs.neighborhoods import (
    ball,
    bfs_distances,
    bounded_bfs,
    distance,
    induced_subgraph,
    tuple_ball,
)
from repro.graphs.sparsity import (
    edge_density_exponent,
    is_edgeless,
    weak_coloring_number_upper_bound,
    weakly_accessible_counts,
)
from repro.graphs.validation import LocalityReport, locality_report

__all__ = [
    "ColoredGraph",
    "ball",
    "bfs_distances",
    "bounded_bfs",
    "distance",
    "induced_subgraph",
    "tuple_ball",
    "binary_tree",
    "bounded_degree_random_graph",
    "caterpillar",
    "cycle",
    "grid",
    "hex_grid",
    "long_cycle_with_chords",
    "outerplanar_random_graph",
    "partial_k_tree",
    "path",
    "random_forest",
    "random_planar_like_graph",
    "random_tree",
    "star",
    "subdivided_clique",
    "LocalityReport",
    "locality_report",
    "edge_density_exponent",
    "is_edgeless",
    "weak_coloring_number_upper_bound",
    "weakly_accessible_counts",
]
