"""Serialization for colored graphs and databases.

Two formats:

* **edge-list text** — a simple line-oriented format for colored graphs::

      # comments and blank lines ignored
      n 12
      e 0 1
      e 1 2
      c Blue 3 4 5

* **JSON** — a faithful round-trip for both :class:`ColoredGraph` and
  :class:`~repro.db.database.Database` (schema + tuples), convenient for
  shipping benchmark inputs.

All writers are deterministic (sorted output) so serialized graphs diff
cleanly under version control.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.db.database import Database, Schema
from repro.errors import GraphFormatError
from repro.graphs.colored_graph import ColoredGraph


# ---------------------------------------------------------------------------
# edge-list text format
# ---------------------------------------------------------------------------


def dumps_edge_list(graph: ColoredGraph) -> str:
    """Serialize a colored graph to the edge-list text format."""
    lines = [f"n {graph.n}"]
    for u, v in sorted(graph.edges()):
        lines.append(f"e {u} {v}")
    for name in sorted(graph.color_names):
        members = sorted(graph.color(name))
        if members:
            lines.append(f"c {name} " + " ".join(map(str, members)))
    return "\n".join(lines) + "\n"


def loads_edge_list(text: str) -> ColoredGraph:
    """Parse the edge-list text format.

    Raises :class:`~repro.errors.GraphFormatError` (a ``ValueError``
    subclass) with a line number on malformed input.
    """
    n: int | None = None
    edges: list[tuple[int, int]] = []
    colors: dict[str, list[int]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        tag = fields[0]
        try:
            if tag == "n":
                n = int(fields[1])
            elif tag == "e":
                edges.append((int(fields[1]), int(fields[2])))
            elif tag == "c":
                colors.setdefault(fields[1], []).extend(int(f) for f in fields[2:])
            else:
                raise ValueError(f"unknown record type {tag!r}")
        except (IndexError, ValueError) as error:
            raise GraphFormatError(f"line {lineno}: {error}") from None
    if n is None:
        raise GraphFormatError("missing 'n <count>' header line")
    return ColoredGraph(n, edges, colors=colors)


def write_edge_list(graph: ColoredGraph, path: str | Path) -> None:
    """Write the edge-list text format to ``path``."""
    Path(path).write_text(dumps_edge_list(graph))


def read_edge_list(path: str | Path) -> ColoredGraph:
    """Read a graph in the edge-list text format."""
    return loads_edge_list(Path(path).read_text())


# ---------------------------------------------------------------------------
# JSON format
# ---------------------------------------------------------------------------


def graph_to_json(graph: ColoredGraph) -> dict:
    """A JSON-ready dict for a colored graph."""
    return {
        "kind": "colored_graph",
        "n": graph.n,
        "edges": sorted(graph.edges()),
        "colors": {
            name: sorted(graph.color(name))
            for name in sorted(graph.color_names)
            if graph.color(name)
        },
    }


def graph_from_json(data: dict) -> ColoredGraph:
    """Rebuild a colored graph from :func:`graph_to_json` output."""
    if data.get("kind") != "colored_graph":
        raise GraphFormatError(
            f"not a colored_graph document: kind={data.get('kind')!r}"
        )
    try:
        return ColoredGraph(
            data["n"],
            (tuple(edge) for edge in data["edges"]),
            colors=data.get("colors", {}),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise GraphFormatError(f"malformed colored_graph document: {error}") from None


def database_to_json(db: Database) -> dict:
    """A JSON-ready dict for a relational database."""
    return {
        "kind": "database",
        "domain_size": db.domain_size,
        "schema": dict(sorted(db.schema.relations.items())),
        "tuples": [
            {"relation": name, "values": list(values)}
            for name, values in db.all_tuples()
        ],
    }


def database_from_json(data: dict) -> Database:
    """Rebuild a database from :func:`database_to_json` output."""
    if data.get("kind") != "database":
        raise GraphFormatError(f"not a database document: kind={data.get('kind')!r}")
    db = Database(Schema(data["schema"]), domain_size=data["domain_size"])
    for fact in data["tuples"]:
        db.add(fact["relation"], fact["values"])
    return db


def write_json(obj: ColoredGraph | Database, path: str | Path) -> None:
    """Serialize a graph or database to a JSON file."""
    if isinstance(obj, ColoredGraph):
        payload = graph_to_json(obj)
    elif isinstance(obj, Database):
        payload = database_to_json(obj)
    else:
        raise TypeError(f"cannot serialize {type(obj).__name__}")
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def read_json(path: str | Path) -> ColoredGraph | Database:
    """Load a graph or database from a JSON file (dispatch on "kind")."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise GraphFormatError(f"{path}: invalid JSON: {error}") from None
    if not isinstance(data, dict):
        raise GraphFormatError(f"{path}: expected a JSON object document")
    kind = data.get("kind")
    if kind == "colored_graph":
        return graph_from_json(data)
    if kind == "database":
        return database_from_json(data)
    raise GraphFormatError(f"unknown document kind {kind!r}")
