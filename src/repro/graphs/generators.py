"""Generators for nowhere dense graph families (Section 2 / Theorem 2.1).

The paper's guarantees hold for any *nowhere dense* class: bounded degree,
bounded treewidth, planar, bounded expansion, ...  We cannot ship the
authors' abstract class ``C``; instead we generate canonical members of
such classes so the benchmarks can sweep ``n`` inside a fixed class, which
is exactly the regime of the theorems.

All generators are deterministic given their ``seed`` and return
:class:`~repro.graphs.colored_graph.ColoredGraph` instances whose vertices
optionally carry colors drawn from ``palette`` (used by the example
queries; color assignment is random but seeded).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graphs.colored_graph import ColoredGraph

#: Default colors sprinkled on generated graphs.
DEFAULT_PALETTE: tuple[str, ...] = ("Red", "Blue", "Green")


def _sprinkle_colors(
    graph: ColoredGraph,
    rng: random.Random,
    palette: Sequence[str],
    density: float,
) -> ColoredGraph:
    if not palette or density <= 0:
        return graph
    for name in palette:
        members = [v for v in graph.vertices() if rng.random() < density]
        graph.set_color(name, members)
    return graph


def path(n: int, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """A path ``0 - 1 - ... - n-1`` (treewidth 1)."""
    g = ColoredGraph(n, ((i, i + 1) for i in range(n - 1)))
    return _sprinkle_colors(g, random.Random(seed), palette, 0.3)


def cycle(n: int, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """A cycle on ``n >= 3`` vertices (treewidth 2)."""
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    g = ColoredGraph(n, edges)
    return _sprinkle_colors(g, random.Random(seed), palette, 0.3)


def star(n: int, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """A star with center ``0`` (diameter 2, unbounded degree, still sparse)."""
    g = ColoredGraph(n, ((0, i) for i in range(1, n)))
    return _sprinkle_colors(g, random.Random(seed), palette, 0.3)


def binary_tree(depth: int, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """A complete binary tree of the given depth (``2^(depth+1)-1`` vertices)."""
    n = 2 ** (depth + 1) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    g = ColoredGraph(n, edges)
    return _sprinkle_colors(g, random.Random(seed), palette, 0.3)


def random_tree(n: int, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """A uniform-attachment random tree: vertex ``i`` hangs off a random earlier vertex."""
    rng = random.Random(seed)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    g = ColoredGraph(n, edges)
    return _sprinkle_colors(g, rng, palette, 0.3)


def random_forest(
    n: int,
    trees: int = 4,
    palette: Sequence[str] = DEFAULT_PALETTE,
    seed: int = 0,
) -> ColoredGraph:
    """A forest of roughly equal random trees (disconnected input coverage)."""
    if trees < 1:
        raise ValueError(f"need at least one tree, got {trees}")
    rng = random.Random(seed)
    roots = set(range(min(trees, max(n, 1))))
    edges = []
    for i in range(1, n):
        if i in roots:
            continue
        # attach to an earlier vertex in the same residue class => `trees` components
        candidates = range(i % trees, i, trees)
        edges.append((rng.choice(list(candidates)) if len(candidates) else i % trees, i))
    g = ColoredGraph(n, edges)
    return _sprinkle_colors(g, rng, palette, 0.3)


def caterpillar(spine: int, legs: int = 2, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """A caterpillar: a spine path with ``legs`` pendant vertices per spine node."""
    n = spine * (1 + legs)
    g = ColoredGraph(n)
    for i in range(spine - 1):
        g.add_edge(i, i + 1)
    next_vertex = spine
    for i in range(spine):
        for _ in range(legs):
            g.add_edge(i, next_vertex)
            next_vertex += 1
    return _sprinkle_colors(g, random.Random(seed), palette, 0.3)


def grid(rows: int, cols: int, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """The ``rows x cols`` grid graph — planar, the canonical nowhere dense example."""
    n = rows * cols
    g = ColoredGraph(n)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return _sprinkle_colors(g, random.Random(seed), palette, 0.3)


def bounded_degree_random_graph(
    n: int,
    degree: int = 3,
    palette: Sequence[str] = DEFAULT_PALETTE,
    seed: int = 0,
) -> ColoredGraph:
    """A random graph with maximum degree ``degree`` (bounded-degree class).

    Built by attempting ``n * degree / 2`` random edges and accepting those
    that keep all degrees within the bound.
    """
    if degree < 0:
        raise ValueError(f"degree bound must be non-negative, got {degree}")
    rng = random.Random(seed)
    g = ColoredGraph(n)
    attempts = n * degree
    for _ in range(attempts):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        if g.degree(u) < degree and g.degree(v) < degree:
            g.add_edge(u, v)
    return _sprinkle_colors(g, rng, palette, 0.3)


def outerplanar_random_graph(
    n: int,
    extra_chords: int | None = None,
    palette: Sequence[str] = DEFAULT_PALETTE,
    seed: int = 0,
) -> ColoredGraph:
    """A random maximal-ish outerplanar graph: a cycle plus non-crossing chords.

    Outerplanar graphs have treewidth <= 2 and exclude ``K_4`` as a minor,
    hence form a (very effectively) nowhere dense class.
    """
    if n < 3:
        raise ValueError(f"need at least 3 vertices, got {n}")
    rng = random.Random(seed)
    g = cycle(n, palette=(), seed=seed)
    if extra_chords is None:
        extra_chords = n // 2
    # Non-crossing chords via recursive interval splitting.
    intervals = [(0, n - 1)]
    added = 0
    while intervals and added < extra_chords:
        lo, hi = intervals.pop(rng.randrange(len(intervals)))
        if hi - lo < 3:
            continue
        mid = rng.randrange(lo + 1, hi)
        if mid - lo >= 2:
            g.add_edge(lo, mid)
            added += 1
            intervals.append((lo, mid))
        if hi - mid >= 2:
            intervals.append((mid, hi))
    return _sprinkle_colors(g, rng, palette, 0.3)


def random_planar_like_graph(
    n: int,
    palette: Sequence[str] = DEFAULT_PALETTE,
    seed: int = 0,
) -> ColoredGraph:
    """A sparse planar-like graph: a random tree plus short locality-respecting chords.

    Each extra chord connects vertices at tree-distance <= 3, which keeps the
    graph in a bounded-expansion (hence nowhere dense) class while giving it
    cycles and denser local structure than a tree.
    """
    rng = random.Random(seed)
    g = random_tree(n, palette=(), seed=seed)
    parents = {}
    for u, v in g.edges():
        parents[max(u, v)] = min(u, v)
    for v in range(2, n):
        if rng.random() < 0.3:
            p = parents.get(v)
            gp = parents.get(p) if p is not None else None
            target = gp if gp is not None and rng.random() < 0.5 else p
            if target is not None and target != v and not g.has_edge(v, target):
                g.add_edge(v, target)
    return _sprinkle_colors(g, rng, palette, 0.3)


def subdivided_clique(k: int, subdivisions: int = 1, palette: Sequence[str] = ()) -> ColoredGraph:
    """The ``subdivisions``-subdivision of ``K_k``.

    For fixed ``subdivisions`` and growing ``k`` these graphs are *somewhere
    dense at depth subdivisions*: ``K_k`` is a shallow minor at that depth.
    Used by tests/benches as a *negative* control — covers and splitter
    strategies degrade on them, as the theory predicts.
    """
    if k < 2:
        raise ValueError(f"need k >= 2, got {k}")
    if subdivisions < 0:
        raise ValueError(f"subdivisions must be non-negative, got {subdivisions}")
    pairs = [(i, j) for i in range(k) for j in range(i + 1, k)]
    n = k + len(pairs) * subdivisions
    g = ColoredGraph(n)
    next_vertex = k
    for i, j in pairs:
        prev = i
        for _ in range(subdivisions):
            g.add_edge(prev, next_vertex)
            prev = next_vertex
            next_vertex += 1
        g.add_edge(prev, j)
    if palette:
        _sprinkle_colors(g, random.Random(0), palette, 0.3)
    return g


def partial_k_tree(
    n: int,
    k: int = 2,
    edge_keep: float = 0.7,
    palette: Sequence[str] = DEFAULT_PALETTE,
    seed: int = 0,
) -> ColoredGraph:
    """A random partial k-tree: treewidth <= k, hence nowhere dense.

    Built the classic way — start from a (k+1)-clique, repeatedly attach a
    new vertex to a random existing k-clique — then drop each edge with
    probability ``1 - edge_keep`` (subgraphs of k-trees are exactly the
    graphs of treewidth <= k).
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if n < k + 1:
        raise ValueError(f"need at least k+1 = {k + 1} vertices, got {n}")
    if not 0 <= edge_keep <= 1:
        raise ValueError(f"edge_keep must be in [0, 1], got {edge_keep}")
    rng = random.Random(seed)
    g = ColoredGraph(n)
    cliques = [tuple(range(k + 1))]
    edges = {(i, j) for i in range(k + 1) for j in range(i + 1, k + 1)}
    for v in range(k + 1, n):
        base = list(rng.choice(cliques))
        rng.shuffle(base)
        anchor = tuple(sorted(base[:k]))
        for u in anchor:
            edges.add((min(u, v), max(u, v)))
        for dropped in anchor:
            cliques.append(tuple(sorted((set(anchor) - {dropped}) | {v})))
    for u, v in edges:
        if rng.random() < edge_keep:
            g.add_edge(u, v)
    return _sprinkle_colors(g, rng, palette, 0.3)


def hex_grid(rows: int, cols: int, palette: Sequence[str] = DEFAULT_PALETTE, seed: int = 0) -> ColoredGraph:
    """A hexagonal (brick-wall) lattice — planar with maximum degree 3.

    Uses the brick-wall embedding of the honeycomb: the ``rows x cols``
    grid with every other vertical edge removed.
    """
    n = rows * cols
    g = ColoredGraph(n)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows and (r + c) % 2 == 0:
                g.add_edge(v, v + cols)
    return _sprinkle_colors(g, random.Random(seed), palette, 0.3)


def long_cycle_with_chords(
    n: int,
    chords: int | None = None,
    chord_span: int = 6,
    palette: Sequence[str] = DEFAULT_PALETTE,
    seed: int = 0,
) -> ColoredGraph:
    """A cycle with short chords — locally dense-ish but bounded expansion.

    All chords connect vertices at cycle-distance <= ``chord_span``, so no
    small-world shortcuts appear and r-balls stay linear in r.
    """
    g = cycle(n, palette=(), seed=seed)
    rng = random.Random(seed)
    if chords is None:
        chords = n // 3
    for _ in range(chords):
        a = rng.randrange(n)
        span = rng.randrange(2, chord_span + 1)
        b = (a + span) % n
        if not g.has_edge(a, b):
            g.add_edge(a, b)
    return _sprinkle_colors(g, rng, palette, 0.3)


#: Named family sweep used by the benchmarks: family name -> builder(n, seed).
FAMILIES = {
    "path": lambda n, seed=0: path(n, seed=seed),
    "random_tree": lambda n, seed=0: random_tree(n, seed=seed),
    "grid": lambda n, seed=0: grid(max(int(n ** 0.5), 2), max(int(n ** 0.5), 2), seed=seed),
    "bounded_degree": lambda n, seed=0: bounded_degree_random_graph(n, degree=3, seed=seed),
    "planar_like": lambda n, seed=0: random_planar_like_graph(n, seed=seed),
    "outerplanar": lambda n, seed=0: outerplanar_random_graph(n, seed=seed),
}
