"""Treedepth: exact (small graphs) and bounded certificates.

Treedepth is the strongest of the classic sparsity measures: classes of
bounded treedepth are exactly those where Splitter wins the game in a
*radius-independent* number of rounds, which makes treedepth
decompositions natural Splitter certificates.

* :func:`treedepth` — exact, exponential-time (memoized over connected
  vertex subsets); intended for graphs up to a few dozen vertices, e.g.
  to validate strategies in tests.
* :func:`treedepth_decomposition` — a greedy elimination forest giving an
  *upper bound*; linear-ish and usable as a Splitter strategy hint.
"""

from __future__ import annotations

from functools import lru_cache

from repro.graphs.colored_graph import ColoredGraph

#: exact computation refuses graphs larger than this
EXACT_LIMIT = 40


def _components(adjacency: dict[int, frozenset[int]], vertices: frozenset[int]):
    remaining = set(vertices)
    while remaining:
        start = remaining.pop()
        component = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for w in adjacency[u]:
                if w in remaining:
                    remaining.discard(w)
                    component.add(w)
                    frontier.append(w)
        yield frozenset(component)


def treedepth(graph: ColoredGraph) -> int:
    """The exact treedepth of ``graph`` (small graphs only).

    td(∅) = 0; td(G) = 1 + min over vertices v of max over components C
    of G - v of td(C) for connected G; max over components otherwise.
    """
    if graph.n > EXACT_LIMIT:
        raise ValueError(
            f"exact treedepth is exponential; refusing n={graph.n} > {EXACT_LIMIT}"
        )
    adjacency = {v: graph.neighbors(v) for v in graph.vertices()}

    @lru_cache(maxsize=None)
    def solve(vertices: frozenset[int]) -> int:
        if not vertices:
            return 0
        parts = list(_components(adjacency, vertices))
        if len(parts) > 1:
            return max(solve(part) for part in parts)
        if len(vertices) == 1:
            return 1
        best = len(vertices)
        for v in sorted(vertices):
            rest = vertices - {v}
            depth = 1 + max(
                (solve(part) for part in _components(adjacency, rest)), default=0
            )
            best = min(best, depth)
            if best == 2:  # cannot do better than 2 on a connected graph
                break
        return best

    return solve(frozenset(graph.vertices()))


def treedepth_decomposition(graph: ColoredGraph) -> tuple[dict[int, int | None], int]:
    """A greedy elimination forest: (parent map, depth upper bound).

    Repeatedly removes a separator-ish vertex (the centroid heuristic of
    the Splitter strategies) from every remaining component; the removal
    order forms a forest whose depth bounds the treedepth from above.
    """
    from repro.splitter.strategies import CentroidStrategy

    strategy = CentroidStrategy()
    parent: dict[int, int | None] = {}
    depth_of: dict[int, int] = {}
    adjacency = {v: graph.neighbors(v) for v in graph.vertices()}

    def peel(vertices: frozenset[int], above: int | None, depth: int) -> int:
        if not vertices:
            return depth
        deepest = depth
        for component in _components(adjacency, vertices):
            members = sorted(component)
            root = strategy.choose(graph, members, members, members[0], 1)
            parent[root] = above
            depth_of[root] = depth + 1
            deepest = max(
                deepest, peel(component - {root}, root, depth + 1)
            )
        return deepest

    bound = peel(frozenset(graph.vertices()), None, 0)
    return parent, bound
