"""Sparsity measurements for nowhere dense classes (Section 2, Theorem 2.1).

The paper characterizes nowhere dense classes via *weak r-accessibility*:
``b`` is weakly r-accessible from ``a`` (under a linear order) if some path
of length <= r connects them on which ``b`` is smaller than ``a`` and all
intermediate vertices.  A class is nowhere dense iff orders exist making
those counts ``<= n^eps``; bounded expansion iff they are constant.

These quantities are not needed by the enumeration algorithms themselves —
they consume covers and splitter strategies — but they are how we *verify*
that generated inputs are sparse (experiment E10) and how we demonstrate
Theorem 2.1's edge bound.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.graphs.colored_graph import ColoredGraph


def degeneracy_order(graph: ColoredGraph) -> list[int]:
    """A degeneracy (smallest-last) order of the vertices.

    Repeatedly removes a minimum-degree vertex; the reverse removal order is
    the classic greedy order witnessing small weak-accessibility counts on
    sparse graphs.  Runs in ``O(n + m)`` with bucket queues.
    """
    n = graph.n
    degree = [graph.degree(v) for v in range(n)]
    max_degree = max(degree, default=0)
    buckets: list[set[int]] = [set() for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degree[v]].add(v)
    removed = [False] * n
    removal: list[int] = []
    cursor = 0
    for _ in range(n):
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        v = buckets[cursor].pop()
        removed[v] = True
        removal.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                buckets[degree[w]].discard(w)
                degree[w] -= 1
                buckets[degree[w]].add(w)
                if degree[w] < cursor:
                    cursor = degree[w]
    removal.reverse()
    return removal


def weakly_accessible_counts(
    graph: ColoredGraph,
    radius: int,
    order: Sequence[int] | None = None,
) -> list[int]:
    """For each vertex, the number of weakly ``radius``-accessible vertices.

    ``order[i]`` is the vertex at position ``i``; smaller position = smaller
    in the order.  Defaults to a degeneracy order.  Computed by a truncated
    DFS from each vertex that only continues through strictly larger
    intermediate vertices, per the definition in Section 2.
    """
    if order is None:
        order = degeneracy_order(graph)
    position = [0] * graph.n
    for i, v in enumerate(order):
        position[v] = i
    counts = []
    for a in graph.vertices():
        accessible: set[int] = set()
        # frontier holds (vertex, remaining steps); intermediate vertices on
        # the path so far are all > a in the order.
        frontier = [(a, radius)]
        visited = {a}
        while frontier:
            u, budget = frontier.pop()
            if budget == 0:
                continue
            for w in graph.neighbors(u):
                if position[w] < position[a]:
                    accessible.add(w)
                if w not in visited and position[w] > position[a] and budget > 1:
                    visited.add(w)
                    frontier.append((w, budget - 1))
        counts.append(len(accessible))
    return counts


def weak_coloring_number_upper_bound(graph: ColoredGraph, radius: int) -> int:
    """``max_a |weakly r-accessible from a}| + 1`` under the degeneracy order.

    An upper bound on the weak ``r``-coloring number; constant in ``n`` over
    a bounded-expansion class, ``n^{o(1)}`` over a nowhere dense class.
    """
    counts = weakly_accessible_counts(graph, radius)
    return (max(counts) if counts else 0) + 1


def edge_density_exponent(graph: ColoredGraph) -> float:
    """The exponent ``e`` with ``||G|| = |G|^e`` (Theorem 2.1's quantity).

    Nowhere dense classes satisfy ``e <= 1 + eps`` eventually for every
    ``eps > 0``.
    """
    if graph.n <= 1:
        return 0.0
    return math.log(graph.size) / math.log(graph.n)


def is_edgeless(graph: ColoredGraph) -> bool:
    """True iff the graph has no edges (the splitter-recursion base case)."""
    return graph.num_edges == 0


def average_degree(graph: ColoredGraph) -> float:
    """``2|E| / |V|`` (0 for the empty graph)."""
    if graph.n == 0:
        return 0.0
    return 2 * graph.num_edges / graph.n


def degeneracy(graph: ColoredGraph) -> int:
    """The degeneracy of the graph (max min-degree over subgraphs)."""
    n = graph.n
    degree = [graph.degree(v) for v in range(n)]
    max_degree = max(degree, default=0)
    buckets: list[set[int]] = [set() for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degree[v]].add(v)
    removed = [False] * n
    best = 0
    cursor = 0
    for _ in range(n):
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        best = max(best, cursor)
        v = buckets[cursor].pop()
        removed[v] = True
        for w in graph.neighbors(v):
            if not removed[w]:
                buckets[degree[w]].discard(w)
                degree[w] -= 1
                buckets[degree[w]].add(w)
                if degree[w] < cursor:
                    cursor = degree[w]
    return best
