"""Input validation: is this graph *locally* sparse enough to index?

The paper's guarantees are for nowhere dense **classes**; a single input
can silently leave the regime — most often via small-world shortcuts
(long-range edges that make every ``r``-ball engulf the graph), in which
case the engine stays correct but degrades toward its naive cutoffs.
:func:`locality_report` measures the quantities that actually drive the
engine's cost and renders a verdict, so users find out *before* paying
for a preprocessing run.

>>> from repro.graphs.generators import grid
>>> locality_report(grid(20, 20, palette=()), radius=2).verdict
'good'
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.graphs.sparsity import (
    degeneracy,
    edge_density_exponent,
    weak_coloring_number_upper_bound,
)


@dataclass(frozen=True)
class LocalityReport:
    """Measured locality statistics and a verdict.

    Attributes
    ----------
    radius:
        The ball radius the statistics refer to (use the query's
        decomposition radius times its arity for a faithful preview).
    mean_ball / max_ball:
        Sampled ``|N_radius(v)|`` statistics.
    ball_fraction:
        ``max_ball / n`` — the engine's bags are ~2x these balls, so a
        fraction near 1 means "one bag is the whole graph".
    density_exponent / degeneracy / weak_coloring_bound:
        Global sparsity measures (Theorem 2.1 / Section 2).
    verdict:
        ``"good"`` (balls pseudo-constant), ``"degraded"`` (balls a large
        fraction of the graph: expect naive-cutoff behaviour) or
        ``"dense"`` (globally dense: wrong tool).
    """

    radius: int
    n: int
    mean_ball: float
    max_ball: int
    ball_fraction: float
    density_exponent: float
    degeneracy: int
    weak_coloring_bound: int
    verdict: str

    def render(self) -> str:
        """Human-readable multi-line summary."""
        return "\n".join(
            [
                f"n = {self.n}, radius = {self.radius}",
                f"ball sizes: mean {self.mean_ball:.1f}, max {self.max_ball} "
                f"({self.ball_fraction:.0%} of the graph)",
                f"density exponent: {self.density_exponent:.3f}",
                f"degeneracy: {self.degeneracy}",
                f"weak {self.radius}-coloring bound: {self.weak_coloring_bound}",
                f"verdict: {self.verdict}",
            ]
        )


def locality_report(
    graph: ColoredGraph,
    radius: int = 2,
    samples: int = 64,
    seed: int = 0,
) -> LocalityReport:
    """Sample ball sizes and sparsity measures; see :class:`LocalityReport`."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    n = graph.n
    if n == 0:
        return LocalityReport(radius, 0, 0.0, 0, 0.0, 0.0, 0, 1, "good")
    rng = random.Random(seed)
    vertices = (
        list(graph.vertices())
        if n <= samples
        else rng.sample(range(n), samples)
    )
    sizes = [len(bounded_bfs(graph, [v], radius)) for v in vertices]
    mean_ball = sum(sizes) / len(sizes)
    max_ball = max(sizes)
    fraction = max_ball / n
    exponent = edge_density_exponent(graph)
    degen = degeneracy(graph)
    weak = weak_coloring_number_upper_bound(graph, radius) if n <= 4096 else -1
    if exponent > 1.5 and n > 16:
        verdict = "dense"
    elif fraction > 0.5 and n > 64:
        verdict = "degraded"
    else:
        verdict = "good"
    return LocalityReport(
        radius, n, mean_ball, max_ball, fraction, exponent, degen, weak, verdict
    )
