"""Distances, balls and induced neighborhoods (Section 2 of the paper).

The paper works with the Gaifman graph; for colored graphs the Gaifman
graph *is* the edge relation, so all distance notions reduce to plain BFS.
``N_r(a)`` is the closed ball of radius ``r`` around ``a``; for a tuple,
``N_r(ā)`` is the union of the component balls.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graphs.colored_graph import ColoredGraph

#: Distance value standing for "unreachable" (the paper leaves it infinite).
INFINITY = float("inf")


def bfs_distances(graph: ColoredGraph, source: int) -> dict[int, int]:
    """All finite distances from ``source`` (full BFS)."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bounded_bfs(graph: ColoredGraph, sources: Iterable[int], radius: int) -> dict[int, int]:
    """Distances up to ``radius`` from the closest of ``sources``.

    This is the workhorse for computing ``N_r`` sets and the recolorings
    ``R_i`` of Example 1-C / preprocessing Step 4 (Section 4.2.1): the result
    maps every vertex within distance ``radius`` of some source to that
    distance.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    dist: dict[int, int] = {}
    queue: deque[int] = deque()
    for s in sources:
        if s not in dist:
            dist[s] = 0
            queue.append(s)
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == radius:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def distance(graph: ColoredGraph, a: int, b: int, cutoff: int | None = None) -> int | float:
    """Distance between ``a`` and ``b``; ``INFINITY`` if disconnected.

    With ``cutoff`` given, stops early and returns ``INFINITY`` whenever the
    distance exceeds it — that is all ``dist_<=r`` atoms ever need.
    """
    if a == b:
        return 0
    limit = cutoff if cutoff is not None else graph.n
    dist = bounded_bfs(graph, [a], limit)
    return dist.get(b, INFINITY)


def ball(graph: ColoredGraph, center: int, radius: int) -> set[int]:
    """``N_r(a)``: vertices at distance at most ``radius`` from ``center``."""
    return set(bounded_bfs(graph, [center], radius))


def tuple_ball(graph: ColoredGraph, centers: Iterable[int], radius: int) -> set[int]:
    """``N_r(ā)``: union of the balls of the tuple's components."""
    return set(bounded_bfs(graph, centers, radius))


def induced_subgraph(graph: ColoredGraph, vertices: Iterable[int]) -> ColoredGraph:
    """``G[B]`` as a graph on the *same* vertex ids, isolated outside ``B``.

    The paper's ``G[B]`` has domain ``B``; keeping the ambient vertex ids
    (with vertices outside ``B`` left isolated and colorless) lets indexes
    built on the subgraph answer queries phrased in ambient coordinates.
    Use :meth:`ColoredGraph.relabeled_subgraph` when a compact domain is
    needed instead.
    """
    vertex_set = set(vertices)
    sub = ColoredGraph(graph.n)
    for v in vertex_set:
        for w in graph.neighbors(v):
            if w in vertex_set and v < w:
                sub.add_edge(v, w)
    for name in graph.color_names:
        members = graph.color(name) & vertex_set
        if members:
            sub.set_color(name, members)
    return sub


def connected_components(graph: ColoredGraph) -> list[set[int]]:
    """Connected components, each as a set of vertices."""
    seen: set[int] = set()
    components = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = set(bfs_distances(graph, start))
        seen |= component
        components.append(component)
    return components


def eccentricity(graph: ColoredGraph, v: int) -> int:
    """Largest finite distance from ``v``."""
    return max(bfs_distances(graph, v).values())
